package dataflow

import (
	"f3m/internal/ir"
)

// LivenessResult is the per-block liveness fixpoint: a value is live-in
// when some path from the block start reaches a use before any
// redefinition (SSA values have none, so this is upward-exposed-use
// dataflow over instruction results and parameters).
type LivenessResult struct {
	// In and Out are the per-block live sets.
	In, Out map[*ir.Block]ValueSet
}

// Liveness runs the backward liveness analysis over f. Phi uses are
// charged to the incoming edge's predecessor — the value must be live
// at the end of that predecessor, not at the phi itself — matching the
// dominance rule ir.DomTree.DominatesInstr applies.
func Liveness(f *ir.Function) *LivenessResult {
	p := newLivenessProblem(f)
	res := Solve[ValueSet](f, p)
	return &LivenessResult{In: res.In, Out: res.Out}
}

// livenessProblem instantiates the solver for liveness: state is the
// live value set, Transfer applies the per-block exposed/defs summary,
// and FlowEdge injects the phi uses of each CFG edge.
type livenessProblem struct {
	exposed map[*ir.Block]ValueSet
	defs    map[*ir.Block]ValueSet
	// phiIn[to][from] collects the values phis of block `to` pull in
	// along the edge from block `from`.
	phiIn map[*ir.Block]map[*ir.Block]ValueSet
}

func newLivenessProblem(f *ir.Function) *livenessProblem {
	p := &livenessProblem{
		exposed: make(map[*ir.Block]ValueSet, len(f.Blocks)),
		defs:    make(map[*ir.Block]ValueSet, len(f.Blocks)),
		phiIn:   make(map[*ir.Block]map[*ir.Block]ValueSet),
	}
	for _, b := range f.Blocks {
		exp := make(ValueSet)
		def := make(ValueSet)
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for i, v := range in.Operands {
					if Trackable(v) {
						from := in.IncomingBlocks[i]
						edges := p.phiIn[b]
						if edges == nil {
							edges = make(map[*ir.Block]ValueSet)
							p.phiIn[b] = edges
						}
						if edges[from] == nil {
							edges[from] = make(ValueSet)
						}
						edges[from][v] = true
					}
				}
				def[in] = true
				continue
			}
			for _, v := range in.Operands {
				if Trackable(v) && !def[v] {
					exp[v] = true
				}
			}
			if !in.Ty.IsVoid() {
				def[in] = true
			}
		}
		p.exposed[b] = exp
		p.defs[b] = def
	}
	return p
}

// Direction reports Backward.
func (p *livenessProblem) Direction() Direction { return Backward }

// Boundary is the empty live set at every exit.
func (p *livenessProblem) Boundary() ValueSet { return make(ValueSet) }

// Init is the empty set (the bottom of the may-live lattice).
func (p *livenessProblem) Init() ValueSet { return make(ValueSet) }

// Join unions live sets.
func (p *livenessProblem) Join(dst, src ValueSet) (ValueSet, bool) {
	return joinValueSets(dst, src)
}

// Transfer computes live-in from live-out:
//
//	LiveIn(b) = upwardExposed(b) ∪ (LiveOut(b) − defs(b))
func (p *livenessProblem) Transfer(b *ir.Block, out ValueSet) ValueSet {
	in := make(ValueSet, len(p.exposed[b])+len(out))
	for v := range p.exposed[b] {
		in[v] = true
	}
	for v := range out {
		if !p.defs[b][v] {
			in[v] = true
		}
	}
	return in
}

// FlowEdge adds the phi uses of the edge from→to to the state flowing
// backward across it, making those values live-out of `from` without
// leaking into other predecessors.
func (p *livenessProblem) FlowEdge(from, to *ir.Block, s ValueSet) ValueSet {
	extra := p.phiIn[to][from]
	if len(extra) == 0 {
		return s
	}
	out := make(ValueSet, len(s)+len(extra))
	for v := range s {
		out[v] = true
	}
	for v := range extra {
		out[v] = true
	}
	return out
}

// Trackable reports whether a value participates in the value-set
// analyses (locals: instruction results and parameters; constants,
// globals and functions do not).
func Trackable(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param:
		return true
	}
	return false
}
