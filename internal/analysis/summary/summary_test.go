package summary

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/obs"
)

func genModule(t *testing.T, seed int64) *ir.Module {
	t.Helper()
	return irgen.Generate(irgen.DefaultConfig(seed)).Module
}

func TestExtractDeterministic(t *testing.T) {
	m := genModule(t, 7)
	a := Extract(m, Params{}, nil, nil)
	b := Extract(m, Params{}, nil, nil)
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("two extracts of the same module differ")
	}
	if a.NumFuncs == 0 || len(a.Funcs) != a.NumFuncs {
		t.Fatalf("bad function accounting: NumFuncs=%d len=%d", a.NumFuncs, len(a.Funcs))
	}
	if a.Version != Version {
		t.Fatalf("version %q", a.Version)
	}
}

func TestExtractStableAcrossParses(t *testing.T) {
	// The whole point of the stable encoding: the same textual module
	// parsed into two different type contexts must summarize
	// identically.
	m1 := genModule(t, 11)
	text := ir.ModuleString(m1)
	m2, err := ir.ParseModule(text)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := Extract(m1, Params{}, nil, nil).Encode()
	e2, _ := Extract(m2, Params{}, nil, nil).Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("summaries differ across independent parses of the same module")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ms := Extract(genModule(t, 13), Params{}, nil, nil)
	ms.Source = "some/path.ir"
	enc, err := ms.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(string(enc), "\n", 3)[1], Version) {
		t.Errorf("version header not near the top of the encoding")
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("decode/encode round trip not byte-identical")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	ms := Extract(genModule(t, 13), Params{}, nil, nil)
	enc, _ := ms.Encode()
	bad := bytes.Replace(enc, []byte(Version), []byte("f3msum0"), 1)
	if _, err := Decode(bad); err == nil {
		t.Error("unknown version accepted")
	}
	truncated := bytes.Replace(enc, []byte(`"minhash": "`), []byte(`"minhash": "ab`), 1)
	if _, err := Decode(truncated); err == nil {
		t.Error("fingerprint with wrong lane count accepted")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMatches(t *testing.T) {
	m := genModule(t, 17)
	ms := Extract(m, Params{}, nil, nil)
	var fs *FuncSummary
	for _, c := range ms.Funcs {
		if m.Func(c.Name) != nil && !m.Func(c.Name).IsDecl() {
			fs = c
			break
		}
	}
	if fs == nil {
		t.Fatal("no summarized definition")
	}
	f := m.Func(fs.Name)
	if !fs.Matches(f) {
		t.Fatal("fresh summary does not match its own function")
	}
	if fs.Matches(nil) {
		t.Error("nil function matched")
	}
	corrupt := *fs
	corrupt.SeqDigest ^= 1
	if corrupt.Matches(f) {
		t.Error("corrupted digest matched")
	}
	corrupt = *fs
	corrupt.SigHash ^= 1
	if corrupt.Matches(f) {
		t.Error("corrupted signature hash matched")
	}
	corrupt = *fs
	corrupt.SeqLen++
	if corrupt.Matches(f) {
		t.Error("corrupted length matched")
	}
}

func TestIndexAddRejections(t *testing.T) {
	m := genModule(t, 19)
	parts, err := ir.SplitModule(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := Extract(parts[0], Params{}, nil, nil)
	b := Extract(parts[1], Params{}, nil, nil)

	ix := NewIndex()
	if err := ix.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(a); err == nil {
		t.Error("duplicate module name accepted")
	}
	renamed := *a
	renamed.Module = a.Module + ".copy"
	if err := ix.Add(&renamed); err == nil {
		t.Error("duplicate definitions accepted")
	}
	bad := *b
	bad.Version = "f3msum0"
	if err := ix.Add(&bad); err == nil {
		t.Error("version mismatch accepted")
	}
	other := Extract(parts[1], Params{K: 100, Bands: 50}, nil, nil)
	if err := ix.Add(other); err == nil {
		t.Error("params mismatch accepted")
	}
	if err := ix.Add(b); err != nil {
		t.Fatal(err)
	}
	if len(ix.Modules()) != 2 {
		t.Fatalf("modules: %d", len(ix.Modules()))
	}
}

// planString renders a plan canonically for comparison.
func planString(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "funcs=%d cross=%d t=%v\n", p.NumFuncs, p.CrossModule, p.Threshold)
	for _, pr := range p.Pairs {
		fmt.Fprintf(&sb, "%s + %s sim=%v cross=%v\n", pr.A.Name, pr.B.Name, pr.Similarity, pr.CrossModule())
	}
	return sb.String()
}

func TestPlanDeterministicAcrossOrderAndWorkers(t *testing.T) {
	m := genModule(t, 23)
	parts, err := ir.SplitModule(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]*ModuleSummary, len(parts))
	for i, p := range parts {
		sums[i] = Extract(p, Params{}, nil, nil)
	}

	build := func(order []int) *Index {
		ix := NewIndex()
		for _, i := range order {
			if err := ix.Add(sums[i]); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	base := planString(build([]int{0, 1, 2, 3}).Plan(-1, 1, nil))
	if !strings.Contains(base, "+") {
		t.Fatal("plan is empty; test is vacuous")
	}
	for _, order := range [][]int{{3, 2, 1, 0}, {2, 0, 3, 1}} {
		if got := planString(build(order).Plan(-1, 1, nil)); got != base {
			t.Errorf("plan depends on ingestion order %v:\n--- base ---\n%s\n--- got ---\n%s", order, base, got)
		}
	}
	for _, w := range []int{2, 8} {
		if got := planString(build([]int{0, 1, 2, 3}).Plan(-1, w, nil)); got != base {
			t.Errorf("plan depends on workers=%d", w)
		}
	}
}

func TestPlanFindsCrossModulePairs(t *testing.T) {
	// Round-robin splitting scatters each irgen family across
	// partitions, so a global plan must pair functions from different
	// modules.
	m := genModule(t, 29)
	parts, err := ir.SplitModule(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	for _, p := range parts {
		if err := ix.Add(Extract(p, Params{}, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	mx := obs.NewMetrics()
	plan := ix.Plan(-1, 1, mx)
	if plan.CrossModule == 0 {
		t.Fatal("global plan found no cross-module pairs")
	}
	if got := mx.CounterValue("summary.planned"); got != int64(len(plan.Pairs)) {
		t.Errorf("summary.planned=%d, want %d", got, len(plan.Pairs))
	}
	if got := mx.CounterValue("summary.planned_cross"); got != int64(plan.CrossModule) {
		t.Errorf("summary.planned_cross=%d, want %d", got, plan.CrossModule)
	}
}

func TestExtractMetrics(t *testing.T) {
	m := genModule(t, 31)
	mx := obs.NewMetrics()
	ms := Extract(m, Params{}, nil, mx)
	if got := mx.CounterValue("summary.extracted"); got != int64(ms.NumFuncs) {
		t.Errorf("summary.extracted=%d, want %d", got, ms.NumFuncs)
	}
	h := mx.Histogram("summary.bytes_per_func", nil)
	if h.Count() != int64(ms.NumFuncs) {
		t.Errorf("bytes_per_func count=%d, want %d", h.Count(), ms.NumFuncs)
	}
	if h.Sum() <= 0 {
		t.Error("bytes_per_func sum not positive")
	}
}
