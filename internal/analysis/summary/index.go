package summary

import (
	"fmt"
	"sort"

	"f3m/internal/fingerprint"
	"f3m/internal/lsh"
	"f3m/internal/obs"
)

// Index is the global half of the modular analysis: it ingests
// ModuleSummaries from any number of separately parsed (or separately
// built, or remote) modules and plans cross-module merges over the
// summaries alone. It never touches IR — the whole point is that the
// program's modules need not be in memory together until link time.
//
// An Index is not safe for concurrent use.
type Index struct {
	params Params
	mods   []*ModuleSummary

	// owner maps each defined function name to the module that defines
	// it, enforcing the one-definition rule before link time.
	owner map[string]string
}

// NewIndex returns an empty index. The first Add fixes the parameters
// every later module must match.
func NewIndex() *Index {
	return &Index{owner: make(map[string]string)}
}

// Params returns the parameter set the index compares under (zero
// until the first Add).
func (ix *Index) Params() Params { return ix.params }

// Modules returns the ingested summaries in Add order.
func (ix *Index) Modules() []*ModuleSummary { return ix.mods }

// Add ingests one module's summaries. It fails fast — before any IR is
// loaded or linked — on the mismatches that would otherwise surface as
// link errors or, worse, as incomparable fingerprints silently ranking
// garbage: wrong format version, differing fingerprint parameters,
// colliding module names (which would make every pair look
// intra-module and break the cross-module accounting), and duplicate
// definitions of one function name across modules.
func (ix *Index) Add(ms *ModuleSummary) error {
	if ms.Version != Version {
		return fmt.Errorf("summary: module %s: version %q not supported (want %q)", ms.Module, ms.Version, Version)
	}
	for _, prev := range ix.mods {
		if prev.Module == ms.Module {
			return fmt.Errorf("summary: module name %q already ingested; summarize each module under a distinct name", ms.Module)
		}
	}
	if len(ix.mods) == 0 {
		ix.params = ms.Params.withDefaults()
	} else if !ix.params.Equal(ms.Params.withDefaults()) {
		return fmt.Errorf("summary: module %s: params %+v incomparable with index params %+v",
			ms.Module, ms.Params, ix.params)
	}
	for _, fs := range ms.Funcs {
		if prev, dup := ix.owner[fs.Name]; dup {
			return fmt.Errorf("summary: function @%s defined in both %s and %s", fs.Name, prev, ms.Module)
		}
	}
	for _, fs := range ms.Funcs {
		ix.owner[fs.Name] = ms.Module
	}
	ix.mods = append(ix.mods, ms)
	return nil
}

// PlanPair is one planned optimistic merge: two function summaries,
// possibly from different modules, whose fingerprints rank them as
// merge candidates. The link-time driver attempts them in plan order.
type PlanPair struct {
	// AModule/BModule name the defining modules (equal for an
	// intra-module pair the global ranking happened to prefer).
	AModule, BModule string

	// A and B are the paired summaries.
	A, B *FuncSummary

	// Similarity is the MinHash Jaccard estimate.
	Similarity float64
}

// CrossModule reports whether the pair spans two modules — the merges
// a per-module run provably cannot find.
func (p PlanPair) CrossModule() bool { return p.AModule != p.BModule }

// Plan is a cross-module merge plan: the ranked pair list plus the
// parameters it was computed under. Plans are deterministic functions
// of the ingested summary set — the same summaries produce the same
// plan regardless of module order, worker count, or how the program
// was partitioned into modules, because planning runs over the
// name-sorted global function list.
type Plan struct {
	Params    Params
	Threshold float64

	// Pairs lists the planned merges in ranking order.
	Pairs []PlanPair

	// NumFuncs is the global candidate count the plan ranked over.
	NumFuncs int

	// CrossModule counts the pairs spanning two modules.
	CrossModule int

	// LSHStats carries the planning index's bucket counters.
	LSHStats lsh.IndexStats
}

// planEntry is one globally-indexed candidate function.
type planEntry struct {
	mod *ModuleSummary
	fn  *FuncSummary
}

// Plan ranks every summarized function against every other through an
// LSH index over the fingerprints and emits the greedy pair list the
// link-time merge loop will attempt, mirroring the in-process
// pipeline's ranking loop (best surviving candidate per function,
// each function in at most one pair). threshold < 0 selects the
// static default 0. workers parallelizes the LSH build and ranking;
// the plan is identical for every worker count. Metrics (nil-safe):
// summary.planned counts planned pairs, summary.planned_cross the
// cross-module subset.
func (ix *Index) Plan(threshold float64, workers int, mx *obs.Metrics) *Plan {
	if threshold < 0 {
		threshold = 0
	}
	if workers < 1 {
		workers = 1
	}
	p := ix.params.withDefaults()
	plan := &Plan{Params: p, Threshold: threshold}

	// Canonical global order: sort candidates by name. Ingest order
	// must not matter — the same program split 2 or 8 ways, or the
	// same summaries arriving shard-by-shard in any order, must yield
	// the same plan. Names are unique (Add enforces it), so the order
	// is total.
	var entries []planEntry
	for _, ms := range ix.mods {
		for _, fn := range ms.Funcs {
			if fn.Variadic {
				continue // merger refuses variadic signatures
			}
			entries = append(entries, planEntry{mod: ms, fn: fn})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].fn.Name < entries[j].fn.Name })
	plan.NumFuncs = len(entries)
	if len(entries) < 2 {
		return plan
	}

	sigs := make([]fingerprint.MinHash, len(entries))
	for i, e := range entries {
		sigs[i] = e.fn.MinHash.MinHash()
	}

	lix := lsh.NewIndex(lsh.Params{Rows: p.Rows, Bands: p.Bands, BucketCap: p.BucketCap})
	lix.BatchInsert(0, sigs, workers)

	planned := mx.Counter("summary.planned")
	plannedCross := mx.Counter("summary.planned_cross")
	matched := make([]bool, len(entries))
	accept := func(id int) bool { return !matched[id] }
	for i := range entries {
		if matched[i] {
			continue
		}
		best, found := lix.BestWhereN(i, sigs[i], threshold, accept, workers)
		if !found {
			continue
		}
		matched[i], matched[best.ID] = true, true
		pair := PlanPair{
			AModule:    entries[i].mod.Module,
			BModule:    entries[best.ID].mod.Module,
			A:          entries[i].fn,
			B:          entries[best.ID].fn,
			Similarity: best.Similarity,
		}
		plan.Pairs = append(plan.Pairs, pair)
		planned.Inc()
		if pair.CrossModule() {
			plan.CrossModule++
			plannedCross.Inc()
		}
	}
	plan.LSHStats = lix.Stats()
	return plan
}
