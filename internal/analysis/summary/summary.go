// Package summary implements the modular half of optimistic
// cross-module function merging: a static-analysis pass that reduces
// each separately-parsed ir.Module to a compact, serializable
// per-function summary, and a global index (index.go) that plans
// cross-module merges over summaries alone — without ever holding the
// whole program's IR in memory.
//
// The scheme mirrors the Optimistic Global Function Merger: a cheap
// summary pass runs over every translation unit, a global analysis
// ranks merge candidates from the summaries, and the merges themselves
// happen optimistically at link time. Optimism is what keeps the
// summaries small: they carry just enough to find candidates (a stable
// MinHash fingerprint) and to detect staleness (signature hash,
// sequence digest and length), not enough to prove a merge correct.
// The proof happens at link time, where internal/core re-checks every
// summary against the linked body (FuncSummary.Matches) and re-proves
// every commit with the translation validator — a stale or colliding
// summary degrades to a skipped merge, never a miscompile.
//
// Everything in a summary is derived from the context-independent
// stable encoding (fingerprint.EncodeFuncStable), so summaries
// extracted by different processes from separately parsed modules —
// or shipped between serve shards — remain comparable.
package summary

import (
	"encoding/json"
	"fmt"
	"sort"

	"f3m/internal/analysis"
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/obs"
)

// Version is the summary format version, checked on decode and on
// Index ingestion. Bump it whenever the stable encoding or the summary
// field semantics change: a version mismatch means the fingerprints
// are not comparable.
const Version = "f3msum1"

// FNV-1a 64-bit constants for the sequence digest.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Params fixes the fingerprint and LSH geometry a summary was
// extracted under. Two summaries are comparable only when their Params
// are equal; Index.Add enforces that.
type Params struct {
	// K is the MinHash fingerprint size.
	K int `json:"k"`

	// ShingleSize is the window length over the encoded stream.
	ShingleSize int `json:"shingle"`

	// Seed selects the MinHash hash family.
	Seed uint64 `json:"seed"`

	// Rows and Bands are the LSH banding shape used when planning.
	Rows  int `json:"rows"`
	Bands int `json:"bands"`

	// BucketCap caps per-bucket comparisons while planning; 0 means
	// the lsh package default.
	BucketCap int `json:"bucket_cap,omitempty"`
}

// DefaultParams returns the paper's defaults (k=200, shingle 2, r=2,
// b=k/r), matching both the in-process pipeline and the serve store.
func DefaultParams() Params {
	return Params{K: 200, ShingleSize: 2, Seed: 0xF3F3F3F3, Rows: 2, Bands: 100}
}

// withDefaults fills zero fields with the defaults.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.K == 0 {
		p.K = d.K
	}
	if p.ShingleSize == 0 {
		p.ShingleSize = d.ShingleSize
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.Rows == 0 {
		p.Rows = d.Rows
	}
	if p.Bands == 0 {
		p.Bands = p.K / p.Rows
	}
	return p
}

// Equal reports whether two Params describe comparable fingerprints.
func (p Params) Equal(o Params) bool { return p == o }

// fingerprintConfig builds the prepared MinHash config for p.
func (p Params) fingerprintConfig() *fingerprint.Config {
	return (&fingerprint.Config{K: p.K, ShingleSize: p.ShingleSize, Seed: p.Seed}).Prepare()
}

// Signature is a MinHash fingerprint that serializes as one hex string
// (8 hex digits per lane) instead of a JSON number array: ~35% smaller
// on disk and trivially diffable, which matters because summary bytes
// per function is the cost model of the whole scheme.
type Signature fingerprint.MinHash

// MinHash returns the signature as the fingerprint package's type.
func (s Signature) MinHash() fingerprint.MinHash { return fingerprint.MinHash(s) }

// MarshalJSON renders the signature as a single hex string.
func (s Signature) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, len(s)*8+2)
	buf = append(buf, '"')
	const hexDigits = "0123456789abcdef"
	for _, lane := range s {
		for shift := 28; shift >= 0; shift -= 4 {
			buf = append(buf, hexDigits[lane>>uint(shift)&0xf])
		}
	}
	buf = append(buf, '"')
	return buf, nil
}

// UnmarshalJSON parses the hex-string form.
func (s *Signature) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return err
	}
	if len(str)%8 != 0 {
		return fmt.Errorf("summary: signature hex length %d not a multiple of 8", len(str))
	}
	out := make(Signature, len(str)/8)
	for i := range out {
		var lane uint32
		for _, c := range []byte(str[i*8 : i*8+8]) {
			var v uint32
			switch {
			case c >= '0' && c <= '9':
				v = uint32(c - '0')
			case c >= 'a' && c <= 'f':
				v = uint32(c-'a') + 10
			case c >= 'A' && c <= 'F':
				v = uint32(c-'A') + 10
			default:
				return fmt.Errorf("summary: bad signature hex digit %q", c)
			}
			lane = lane<<4 | v
		}
		out[i] = lane
	}
	*s = out
	return nil
}

// FuncSummary is the per-function unit of the modular analysis: enough
// to rank the function as a merge candidate from another process
// (MinHash over the stable encoding), and enough to detect at link
// time that the summarized body is no longer the body being merged
// (signature hash, sequence digest and length — see Matches).
type FuncSummary struct {
	// Name is the function's module-level symbol name; cross-module
	// linking resolves by it, so the Index rejects duplicates.
	Name string `json:"name"`

	// SigHash is the structural hash of the function's signature type
	// (fingerprint.StableTypeCode), comparable across type contexts.
	SigHash uint32 `json:"sig_hash"`

	// SeqLen is the stable-encoded instruction count.
	SeqLen int `json:"seq_len"`

	// SeqDigest is the FNV-1a 64-bit digest of the stable encoded
	// sequence: the cheap "is this still the same body" check the
	// link-time merger uses before trusting the fingerprint.
	SeqDigest uint64 `json:"seq_digest"`

	// MinHash is the stable MinHash fingerprint, the ranking input.
	MinHash Signature `json:"minhash"`

	// Callees lists, sorted and deduplicated, the names of functions
	// this definition calls directly (from analysis.Manager's call
	// graph). The planner uses it to surface call-graph locality;
	// cross-module consumers get linkage facts without parsing bodies.
	Callees []string `json:"callees,omitempty"`

	// AddressTaken marks functions referenced outside a callee slot in
	// their home module; merging such a function still works (the
	// thunk preserves identity), but consumers doing whole-program
	// reasoning need the fact.
	AddressTaken bool `json:"address_taken,omitempty"`

	// Variadic marks signatures the merger refuses; the planner skips
	// them without needing the body.
	Variadic bool `json:"variadic,omitempty"`
}

// ModuleSummary is one translation unit's worth of function summaries
// plus the module-level linkage facts and the parameters everything
// was computed under.
type ModuleSummary struct {
	// Version is the format version; always first so `head -1` of an
	// encoded file shows it.
	Version string `json:"version"`

	// Module is the source module's name.
	Module string `json:"module"`

	// Source optionally records where the module's IR lives, so a
	// link-time driver can load bodies for the optimistic merge.
	Source string `json:"source,omitempty"`

	// Params are the fingerprint/LSH parameters of every summary.
	Params Params `json:"params"`

	// NumFuncs counts the summarized definitions.
	NumFuncs int `json:"num_funcs"`

	// Externs lists, sorted, the names the module declares but does
	// not define — its import surface, resolved at link time.
	Externs []string `json:"externs,omitempty"`

	// Funcs holds one summary per non-variadic definition, in module
	// order.
	Funcs []*FuncSummary `json:"funcs"`
}

// seqDigest folds the stable encoded sequence into a 64-bit FNV-1a
// digest.
func seqDigest(seq []fingerprint.Encoded) uint64 {
	h := uint64(fnvOffset64)
	for _, e := range seq {
		v := uint32(e)
		for i := 0; i < 4; i++ {
			h ^= uint64(v & 0xff)
			h *= fnvPrime64
			v >>= 8
		}
	}
	return h
}

// Histogram bounds for summary.bytes_per_func: summaries are ~2KB with
// the default k=200, so powers of two around that.
var bytesPerFuncBounds = []float64{256, 512, 1024, 2048, 4096, 8192}

// Extract summarizes every function definition of m under params p
// (zero fields take defaults). The analysis is modular: it reads only
// m. A nil Manager gets a fresh one; passing a shared Manager lets a
// driver reuse cached call graphs. Metrics (nil-safe): the
// summary.extracted counter and the summary.bytes_per_func histogram,
// which tracks the serialized size of each function summary — the
// shipping cost of the distributed story.
func Extract(m *ir.Module, p Params, mgr *analysis.Manager, mx *obs.Metrics) *ModuleSummary {
	p = p.withDefaults()
	if mgr == nil {
		mgr = analysis.NewManager()
	}
	cg := mgr.CallGraphOf(m)
	cfg := p.fingerprintConfig()

	ms := &ModuleSummary{
		Version: Version,
		Module:  m.Name,
		Params:  p,
	}
	bytesHist := mx.Histogram("summary.bytes_per_func", bytesPerFuncBounds)
	extracted := mx.Counter("summary.extracted")
	for _, f := range m.Funcs {
		if f.IsDecl() {
			ms.Externs = append(ms.Externs, f.Name())
			continue
		}
		seq := fingerprint.EncodeFuncStable(f)
		fs := &FuncSummary{
			Name:         f.Name(),
			SigHash:      fingerprint.StableTypeCode(f.Sig),
			SeqLen:       len(seq),
			SeqDigest:    seqDigest(seq),
			MinHash:      Signature(cfg.New(seq)),
			AddressTaken: cg.AddressTaken[f],
			Variadic:     f.Sig.Variadic,
		}
		for _, callee := range cg.Callees[f] {
			fs.Callees = append(fs.Callees, callee.Name())
		}
		sort.Strings(fs.Callees)
		ms.Funcs = append(ms.Funcs, fs)
		ms.NumFuncs++
		extracted.Inc()
		if bytesHist != nil {
			if b, err := json.Marshal(fs); err == nil {
				bytesHist.Observe(float64(len(b)))
			}
		}
	}
	sort.Strings(ms.Externs)
	return ms
}

// Matches reports whether f is still the body this summary was
// extracted from: same structural signature, same stable-encoded
// length and digest. This is the optimism check the link-time merger
// runs before trusting a summary — a false return means the summary is
// stale (or a digest collision paired two different bodies) and the
// planned merge must be skipped.
func (s *FuncSummary) Matches(f *ir.Function) bool {
	if f == nil || f.IsDecl() {
		return false
	}
	if fingerprint.StableTypeCode(f.Sig) != s.SigHash {
		return false
	}
	seq := fingerprint.EncodeFuncStable(f)
	return len(seq) == s.SeqLen && seqDigest(seq) == s.SeqDigest
}

// Encode renders the summary as deterministic, versioned, indented
// JSON (stable field order, trailing newline) — the on-disk `.sum`
// format of `f3m summary` and the wire format of `GET /v1/summaries`.
func (ms *ModuleSummary) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses an encoded summary, rejecting unknown versions.
func Decode(data []byte) (*ModuleSummary, error) {
	var ms ModuleSummary
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("summary: decode: %w", err)
	}
	if ms.Version != Version {
		return nil, fmt.Errorf("summary: version %q not supported (want %q)", ms.Version, Version)
	}
	for _, fs := range ms.Funcs {
		if len(fs.MinHash) != ms.Params.K {
			return nil, fmt.Errorf("summary: function %s: fingerprint has %d lanes, params say k=%d",
				fs.Name, len(fs.MinHash), ms.Params.K)
		}
	}
	return &ms, nil
}
