// Package analysis is the pipeline's static-analysis subsystem: an
// analysis manager caching per-function facts (CFG, dominators,
// liveness, use counts, a module call graph) underneath a structured
// diagnostics engine and three checker families —
//
//   - a strict verifier extending ir.VerifyModule/VerifyFunc into
//     module-scope symbol and reference checking;
//   - a merge auditor that replays every committed merge's CommitInfo
//     against the module and proves thunks, call-site rewrites and the
//     discriminator wiring are intact (the class of silent miscompiles
//     the paper's Section III-E bug fixes address);
//   - an IR linter for legal-but-suspicious leftovers the cleanup
//     passes should have removed from generated functions.
//
// Diagnostics carry a checker name, severity and a function/block/
// instruction location, and render deterministically so golden tests
// and the cross-worker determinism contract can diff them bytewise.
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity uint8

// Severities, ordered from informational to fatal.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity as rendered in diagnostics.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Diagnostic is one finding of one checker, located as precisely as the
// checker can: module-level findings leave Func empty, function-level
// findings leave Block empty, and so on.
type Diagnostic struct {
	// Checker is the stable name of the checker that produced the
	// finding (e.g. "strict-verify", "merge-audit", "lint").
	Checker string

	// Sev is the severity class.
	Sev Severity

	// Func, Block and Instr locate the finding: a function name, a
	// block label within it, and an instruction result name or opcode
	// mnemonic. Any suffix of the three may be empty.
	Func, Block, Instr string

	// Msg states the violation.
	Msg string
}

// String renders the diagnostic on one line in the canonical form
//
//	<severity> [<checker>] @func:%block:%instr: message
//
// with absent location components omitted. The format is covered by
// golden tests; renderers and tests rely on its stability.
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Sev.String())
	b.WriteString(" [")
	b.WriteString(d.Checker)
	b.WriteString("]")
	if d.Func != "" {
		b.WriteString(" @")
		b.WriteString(d.Func)
		if d.Block != "" {
			b.WriteString(":%")
			b.WriteString(d.Block)
		}
		if d.Instr != "" {
			b.WriteString(":%")
			b.WriteString(d.Instr)
		}
	}
	b.WriteString(": ")
	b.WriteString(d.Msg)
	return b.String()
}

// Diagnostics is a list of findings with deterministic ordering and
// rendering helpers.
type Diagnostics []Diagnostic

// Sort orders the list canonically: by function, block, instruction,
// checker, severity (descending, so errors lead ties) and message. The
// order is total over distinct diagnostics, making rendered output
// independent of the order checkers emitted them.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		return a.Msg < b.Msg
	})
}

// Count returns how many diagnostics are at least as severe as min.
func (ds Diagnostics) Count(min Severity) int {
	n := 0
	for _, d := range ds {
		if d.Sev >= min {
			n++
		}
	}
	return n
}

// Render writes the sorted diagnostics one per line. It sorts a copy,
// leaving ds unmodified.
func (ds Diagnostics) Render(w io.Writer) error {
	sorted := append(Diagnostics(nil), ds...)
	sorted.Sort()
	for _, d := range sorted {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderString returns the canonical rendering as one string.
func (ds Diagnostics) RenderString() string {
	var b strings.Builder
	ds.Render(&b) // strings.Builder never errors
	return b.String()
}
