package analysis

import (
	"fmt"

	"f3m/internal/ir"
)

// CheckerLint names the IR linter in diagnostics.
const CheckerLint = "lint"

// LintFunc flags legal-but-suspicious IR in one function: patterns the
// cleanup pipeline in internal/passes is supposed to remove, so their
// presence in a generated (and cleaned) function means a pass regressed
// or the generator emitted something the passes cannot see. Findings
// are warnings — the IR still verifies — except where noted.
//
//   - unreachable blocks: SimplifyCFG prunes them;
//   - unused side-effect-free definitions: DCE deletes them;
//   - redundant phis (all incomings one value, ignoring self
//     references): ElimRedundantPhis folds them;
//   - self-referential-only phis (every incoming is the phi itself):
//     an error, since no defined value can flow out of one;
//   - dead stores into tracked stack slots (no load observes the value
//     before the next store or function exit) and loads that may
//     observe an uninitialized slot, via the dataflow slot analyses.
func LintFunc(mgr *Manager, f *ir.Function) Diagnostics {
	if f.IsDecl() {
		return nil
	}
	var ds Diagnostics
	add := func(sev Severity, blk, instr, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Checker: CheckerLint, Sev: sev,
			Func: f.Name(), Block: blk, Instr: instr,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	ff := mgr.Facts(f)
	for _, b := range f.Blocks {
		if !ff.Dom.Reachable(b) {
			add(Warning, b.Name(), "", "block is unreachable from the entry")
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				ds = append(ds, lintPhi(f, b, in)...)
				continue
			}
			if in.Ty.IsVoid() || in.Op.HasSideEffects() {
				continue
			}
			if ff.Uses[in] == 0 {
				add(Warning, b.Name(), instrLabel(in),
					"result of side-effect-free %s is never used", in.Op)
			}
		}
	}
	ds = append(ds, lintSlots(mgr, f, ff)...)
	return ds
}

// lintSlots flags memory misuse over the function's tracked stack
// slots (see dataflow.TrackedSlots): stores whose value no load
// observes before the next store or function exit, and loads that the
// slot's own alloca pseudo-definition may reach — i.e. reads of a
// possibly-uninitialized slot. Tracked slots are exactly what Mem2Reg
// promotes, so a cleaned function should have none; findings mean a
// cleanup pass regressed or the generator emitted dead memory traffic.
func lintSlots(mgr *Manager, f *ir.Function, ff *FuncFacts) Diagnostics {
	sl := mgr.SlotLiveness(f)
	if len(sl.Tracked) == 0 {
		return nil
	}
	reach := mgr.Reaching(f)
	var ds Diagnostics
	for _, b := range f.Blocks {
		if !ff.Dom.Reachable(b) {
			continue
		}
		liveAfter := sl.LiveAfter(b)
		for idx, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				if live, tracked := liveAfter[in]; tracked && !live {
					slot := in.Operands[1].(*ir.Instr)
					ds = append(ds, Diagnostic{
						Checker: CheckerLint, Sev: Warning,
						Func: f.Name(), Block: b.Name(), Instr: instrLabel(in),
						Msg: fmt.Sprintf("dead store: no load observes slot %s before the next store or function exit", slot.Ident()),
					})
				}
			case ir.OpLoad:
				slot, ok := in.Operands[0].(*ir.Instr)
				if !ok || !reach.Tracked[slot] {
					continue
				}
				if reach.DefsAt(b, idx)[slot] {
					ds = append(ds, Diagnostic{
						Checker: CheckerLint, Sev: Warning,
						Func: f.Name(), Block: b.Name(), Instr: instrLabel(in),
						Msg: fmt.Sprintf("load of slot %s may observe an uninitialized value", slot.Ident()),
					})
				}
			}
		}
	}
	return ds
}

// lintPhi flags redundant and degenerate phis, mirroring the triviality
// criterion passes.ElimRedundantPhis folds by.
func lintPhi(f *ir.Function, b *ir.Block, phi *ir.Instr) Diagnostics {
	var only ir.Value
	for _, v := range phi.Operands {
		if v == ir.Value(phi) {
			continue
		}
		if only == nil {
			only = v
			continue
		}
		if !sameConstOrValue(only, v) {
			return nil
		}
	}
	if only == nil {
		return Diagnostics{{
			Checker: CheckerLint, Sev: Error,
			Func: f.Name(), Block: b.Name(), Instr: instrLabel(phi),
			Msg: "phi references only itself; no defined value can reach it",
		}}
	}
	return Diagnostics{{
		Checker: CheckerLint, Sev: Warning,
		Func: f.Name(), Block: b.Name(), Instr: instrLabel(phi),
		Msg: fmt.Sprintf("redundant phi: every incoming is %s", only.Ident()),
	}}
}

// sameConstOrValue matches the value-equivalence rule the cleanup pass
// uses: pointer identity, or equal constants.
func sameConstOrValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	return ok1 && ok2 && ir.ConstEqual(ca, cb)
}
