package analysis

import (
	"fmt"
	"sort"

	"f3m/internal/ir"
)

// CheckerStrictVerify names the strict verifier in diagnostics.
const CheckerStrictVerify = "strict-verify"

// StrictVerify runs the strict module verifier: every function
// definition is checked against the full ir.FuncIssues rule set
// (operand arity and types including the GEP/alloca/cast rules, phi
// edges, terminators, SSA dominance) and the module is checked for
// duplicate symbols and references to functions that are not — or are
// no longer — part of it. All findings are errors: each one is IR that
// could miscompile silently.
func StrictVerify(mgr *Manager, m *ir.Module) Diagnostics {
	var ds Diagnostics
	cg := mgr.CallGraphOf(m)

	seen := make(map[string]int, len(m.Funcs))
	for _, f := range m.Funcs {
		seen[f.Name()]++
	}
	// Sorted emission: diagnostics join the rendered report, which must
	// be byte-identical across runs.
	names := make([]string, 0, len(seen))
	for name := range seen { // lintmap:ignore keys are sorted before emission
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := seen[name]; n > 1 {
			ds = append(ds, Diagnostic{
				Checker: CheckerStrictVerify, Sev: Error, Func: name,
				Msg: fmt.Sprintf("function defined %d times in the module", n),
			})
		}
	}

	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for _, issue := range ir.FuncIssues(f) {
			ds = append(ds, Diagnostic{
				Checker: CheckerStrictVerify, Sev: Error, Func: f.Name(),
				Msg: issue.Error(),
			})
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, op := range in.Operands {
					callee, ok := op.(*ir.Function)
					if !ok || cg.Present[callee] {
						continue
					}
					kind := "reference to"
					if (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0 {
						kind = "call to"
					}
					ds = append(ds, Diagnostic{
						Checker: CheckerStrictVerify, Sev: Error,
						Func: f.Name(), Block: b.Name(), Instr: instrLabel(in),
						Msg: fmt.Sprintf("%s @%s which is not a function in the module", kind, callee.Name()),
					})
				}
			}
		}
	}
	return ds
}

// instrLabel identifies an instruction in a diagnostic: its result name
// when it has one, else its opcode mnemonic.
func instrLabel(in *ir.Instr) string {
	if in.Nam != "" {
		return in.Nam
	}
	return in.Op.String()
}
