package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"f3m/internal/analysis"
	"f3m/internal/ir"
	"f3m/internal/merge"
	"f3m/internal/obs"
)

func mustParse(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// mergeAndCommit merges @fa and @fb in src and commits, returning the
// module and the commit record for corruption by the fault tests.
func mergeAndCommit(t *testing.T, src string) (*ir.Module, *merge.CommitInfo) {
	t.Helper()
	m := mustParse(t, src)
	res, err := merge.Pair(m, m.Func("fa"), m.Func("fb"), merge.DefaultOptions())
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	info := merge.Commit(m, res)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("module invalid after commit: %v", err)
	}
	return m, info
}

// twoParamSrc merges a pair with two forwarded parameters; @fa is
// address-taken so it survives as a thunk the fault tests can corrupt.
const twoParamSrc = `
define i32 @fa(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @fb(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 5
  ret i32 %b
}
define i32 @apply(i32(i32,i32)* %fp, i32 %x) {
entry:
  %r = call i32 %fp(i32 %x, i32 7)
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @apply(i32(i32,i32)* @fa, i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x, i32 2)
  ret i32 %r
}`

func TestAuditCleanCommit(t *testing.T) {
	m, info := mergeAndCommit(t, twoParamSrc)
	ds := analysis.AuditCommit(analysis.NewManager(), m, info)
	if len(ds) != 0 {
		t.Errorf("clean commit produced diagnostics:\n%s", ds.RenderString())
	}
}

func TestAuditCatchesDroppedThunkArgument(t *testing.T) {
	m, info := mergeAndCommit(t, twoParamSrc)
	fa := m.Func("fa")
	if fa == nil || !info.A.Thunked {
		t.Fatal("expected @fa to survive as a thunk")
	}
	// Seeded fault: the thunk forwards undef where its own parameter
	// belongs — exactly the dropped-argument miscompile the auditor
	// exists to catch. The module still verifies.
	call := fa.Blocks[0].Instrs[0]
	args := call.CallArgs()
	corrupted := false
	for i := 1; i < len(args); i++ {
		if _, isParam := args[i].(*ir.Param); isParam {
			call.Operands[1+i] = ir.ConstUndef(args[i].Type())
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("thunk forwards no parameters; test premise broken")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("fault should be invisible to the base verifier: %v", err)
	}

	ds := analysis.AuditCommit(analysis.NewManager(), m, info)
	found := false
	for _, d := range ds {
		if d.Checker == analysis.CheckerMergeAudit && d.Func == "fa" &&
			strings.Contains(d.Msg, "want forwarded parameter") {
			found = true
			if d.Block == "" {
				t.Error("diagnostic lacks a block location")
			}
		}
	}
	if !found {
		t.Errorf("dropped thunk argument not caught; got:\n%s", ds.RenderString())
	}
}

func TestAuditCatchesWrongDiscriminator(t *testing.T) {
	m, info := mergeAndCommit(t, twoParamSrc)
	fa := m.Func("fa")
	call := fa.Blocks[0].Instrs[0]
	// Seeded fault: the thunk dispatches to the wrong side.
	call.Operands[1] = ir.ConstBool(m.Ctx, false)
	ds := analysis.AuditCommit(analysis.NewManager(), m, info)
	if !strings.Contains(ds.RenderString(), "thunk discriminator argument") {
		t.Errorf("wrong discriminator not caught; got:\n%s", ds.RenderString())
	}
}

func TestAuditCatchesDanglingCallSite(t *testing.T) {
	m, info := mergeAndCommit(t, twoParamSrc)
	if info.B.Thunked {
		t.Fatal("expected @fb to be deleted, not thunked")
	}
	// Seeded fault: a call-site rewrite that never happened — point
	// callB back at the deleted original.
	call := m.Func("callB").Blocks[0].Instrs[0]
	call.Operands = []ir.Value{info.B.Fn, call.CallArgs()[1], call.CallArgs()[2]}

	ds := analysis.AuditCommit(analysis.NewManager(), m, info)
	found := false
	for _, d := range ds {
		if d.Func == "callB" && strings.Contains(d.Msg, "deleted function @fb") {
			found = true
			if d.Block == "" || d.Instr == "" {
				t.Errorf("diagnostic not fully located: %s", d)
			}
		}
	}
	if !found {
		t.Errorf("dangling call site not caught; got:\n%s", ds.RenderString())
	}
}

func TestAuditCatchesDiscriminatorLeak(t *testing.T) {
	m, info := mergeAndCommit(t, twoParamSrc)
	g := info.Merged
	// Seeded fault: the discriminator leaks into arithmetic instead of
	// channeling control flow.
	leak := &ir.Instr{Op: ir.OpZExt, Ty: m.Ctx.I32, Operands: []ir.Value{g.Params[0]}, Nam: "leak"}
	entry := g.Blocks[0]
	entry.Instrs = append([]*ir.Instr{leak}, entry.Instrs...)

	ds := analysis.AuditCommit(analysis.NewManager(), m, info)
	if !strings.Contains(ds.RenderString(), "used outside a condbr/select condition") {
		t.Errorf("discriminator leak not caught; got:\n%s", ds.RenderString())
	}
}

func TestAuditInvalidationTargetsRewrittenCallers(t *testing.T) {
	m := mustParse(t, twoParamSrc)
	mgr := analysis.NewManager()
	callB, apply := m.Func("callB"), m.Func("apply")

	// Warm the cache on a caller the commit will rewrite and on a
	// function the commit leaves untouched.
	staleB := mgr.Facts(callB)
	keptApply := mgr.Facts(apply)

	res, err := merge.Pair(m, m.Func("fa"), m.Func("fb"), merge.DefaultOptions())
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	info := merge.Commit(m, res)
	if ds := analysis.AuditCommit(mgr, m, info); len(ds) != 0 {
		t.Fatalf("clean commit audited dirty:\n%s", ds.RenderString())
	}

	// The commit rewrote callB's direct call of @fb in place. Serving
	// the pre-commit facts would answer dominator and use queries about
	// a body that no longer exists.
	freshB := mgr.Facts(callB)
	if freshB == staleB {
		t.Fatal("stale cached facts served for a rewritten caller")
	}
	var newCall *ir.Instr
	callB.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Operands[0] == ir.Value(info.Merged) {
			newCall = in
		}
	})
	if newCall == nil {
		t.Fatal("callB was not rewritten to call the merged function")
	}
	if freshB.Uses[newCall] != 1 {
		t.Errorf("fresh facts count %d uses of the rewritten call, want 1", freshB.Uses[newCall])
	}

	// @apply only calls through a pointer, so the commit never touched
	// it: its facts must survive by pointer identity (the regression
	// this guards was wholesale InvalidateModule on every commit).
	if mgr.Facts(apply) != keptApply {
		t.Error("facts for an untouched function were dropped by a targeted invalidation")
	}

	// The commit metadata names callB as the one rewritten caller.
	found := false
	for _, c := range info.Callers {
		if c == callB {
			found = true
		}
	}
	if !found {
		t.Errorf("CommitInfo.Callers misses callB: %v", info.Callers)
	}
}

func TestStrictVerifyLocatesDanglingCall(t *testing.T) {
	m := mustParse(t, `
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
define i32 @caller(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}`)
	m.RemoveFunc(m.Func("callee"))
	ds := analysis.StrictVerify(analysis.NewManager(), m)
	want := "error [strict-verify] @caller:%entry:%r: call to @callee which is not a function in the module"
	if got := strings.TrimSpace(ds.RenderString()); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestStrictVerifyDuplicateNames(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %x) {
entry:
  ret i32 %x
}`)
	dup := &ir.Function{Nam: "f", Sig: m.Func("f").Sig, Parent: m}
	m.Funcs = append(m.Funcs, dup)
	ds := analysis.StrictVerify(analysis.NewManager(), m)
	if !strings.Contains(ds.RenderString(), "defined 2 times") {
		t.Errorf("duplicate name not caught; got:\n%s", ds.RenderString())
	}
}

func TestLintFindings(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %x, i32 %y) {
entry:
  %unused = add i32 %x, %y
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [%x, %a], [%x, %b]
  ret i32 %p
dead:
  br label %join2
join2:
  ret i32 0
}`)
	ds := analysis.LintFunc(analysis.NewManager(), m.Func("f"))
	out := ds.RenderString()
	for _, want := range []string{
		"result of side-effect-free add is never used",
		"redundant phi: every incoming is %x",
		"@f:%dead: block is unreachable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lint missing %q; got:\n%s", want, out)
		}
	}
	// The used phi result must not be reported unused, and reachable
	// blocks must not be reported unreachable.
	if strings.Contains(out, "%p: result") || strings.Contains(out, "@f:%join: block") {
		t.Errorf("lint over-reported:\n%s", out)
	}
}

func TestLintDeadStoreAndUninitLoad(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  %u = alloca i32
  store i32 %x, i32* %s
  store i32 7, i32* %s
  %v = load i32, i32* %s
  %w = load i32, i32* %u
  %r = add i32 %v, %w
  ret i32 %r
}`)
	ds := analysis.LintFunc(analysis.NewManager(), m.Func("f"))
	out := ds.RenderString()
	for _, want := range []string{
		"dead store: no load observes slot %s",
		"load of slot %u may observe an uninitialized value",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lint missing %q; got:\n%s", want, out)
		}
	}
	// The second store is observed by the load of %v, and that load is
	// fully initialized: neither may be flagged.
	if n := strings.Count(out, "dead store"); n != 1 {
		t.Errorf("want exactly 1 dead-store finding, got %d:\n%s", n, out)
	}
	if strings.Contains(out, "slot %s may observe") {
		t.Errorf("initialized load over-reported:\n%s", out)
	}
}

func TestLintSlotChecksRespectBranches(t *testing.T) {
	// The entry store is observed on one of two paths and the load is
	// dominated by it, so the slot checks must stay silent.
	m := mustParse(t, `
define i32 @g(i32 %x, i1 %c) {
entry:
  %p = alloca i32
  store i32 %x, i32* %p
  br i1 %c, label %a, label %b
a:
  %v = load i32, i32* %p
  br label %join
b:
  br label %join
join:
  %r = phi i32 [%v, %a], [0, %b]
  ret i32 %r
}`)
	ds := analysis.LintFunc(analysis.NewManager(), m.Func("g"))
	out := ds.RenderString()
	if strings.Contains(out, "dead store") || strings.Contains(out, "uninitialized") {
		t.Errorf("slot checks over-reported on branchy but clean slot use:\n%s", out)
	}
}

func TestLintCleanAfterCleanup(t *testing.T) {
	// The committed merged function has been through the full cleanup
	// sequence, so the linter must stay silent on it.
	m, info := mergeAndCommit(t, twoParamSrc)
	_ = m
	ds := analysis.LintFunc(analysis.NewManager(), info.Merged)
	if len(ds) != 0 {
		t.Errorf("lint flagged a cleaned merged function:\n%s\n%s",
			ds.RenderString(), ir.FuncString(info.Merged))
	}
}

func TestManagerFacts(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  %d = add i32 %x, 1
  br label %join
b:
  br label %join
join:
  %p = phi i32 [%d, %a], [%x, %b]
  ret i32 %p
}`)
	mgr := analysis.NewManager()
	f := m.Func("f")
	ff := mgr.Facts(f)
	if mgr.Facts(f) != ff {
		t.Error("facts not cached")
	}

	var blocks = map[string]*ir.Block{}
	for _, b := range f.Blocks {
		blocks[b.Name()] = b
	}
	var c, d, p *ir.Instr
	f.Instructions(func(in *ir.Instr) {
		switch in.Nam {
		case "c":
			c = in
		case "d":
			d = in
		case "p":
			p = in
		}
	})
	if ff.Uses[c] != 1 || ff.Uses[d] != 1 || ff.Uses[p] != 1 {
		t.Errorf("use counts c=%d d=%d p=%d, want 1 each", ff.Uses[c], ff.Uses[d], ff.Uses[p])
	}
	// %x is live into both arms (phi edge from b, add in a); %d is
	// live out of a (phi edge) but not out of b.
	x := ir.Value(f.Params[0])
	if !ff.LiveIn[blocks["a"]][x] || !ff.LiveIn[blocks["b"]][x] {
		t.Error("param x not live into both branch arms")
	}
	if !ff.LiveOut[blocks["a"]][ir.Value(d)] {
		t.Error("instr d not live out of its phi edge block")
	}
	if ff.LiveOut[blocks["b"]][ir.Value(d)] {
		t.Error("instr d spuriously live out of block b")
	}

	mgr.Invalidate(f)
	if mgr.Facts(f) == ff {
		t.Error("Invalidate did not drop cached facts")
	}
}

func TestEngineMetrics(t *testing.T) {
	met := obs.NewMetrics()
	eng := analysis.NewEngine(met)
	m := mustParse(t, `
define i32 @f(i32 %x) {
entry:
  ret i32 %x
}`)
	if ds := eng.StrictModule(m); len(ds) != 0 {
		t.Fatalf("unexpected diagnostics: %s", ds.RenderString())
	}
	if n := met.CounterValue("analysis.checks"); n != 1 {
		t.Errorf("analysis.checks = %d, want 1", n)
	}
	if n := met.CounterValue("analysis.checker.strict-verify.runs"); n != 1 {
		t.Errorf("strict-verify runs = %d, want 1", n)
	}
	if n := met.CounterValue("analysis.diagnostics.error"); n != 0 {
		t.Errorf("error count = %d, want 0", n)
	}
}

func TestEngineSeverityCounters(t *testing.T) {
	met := obs.NewMetrics()
	eng := analysis.NewEngine(met)
	m := mustParse(t, `
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
define i32 @caller(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}`)
	m.RemoveFunc(m.Func("callee"))
	ds := eng.StrictModule(m)
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(ds), ds.RenderString())
	}
	if n := met.CounterValue("analysis.diagnostics.error"); n != 1 {
		t.Errorf("error counter = %d, want 1", n)
	}
	if n := met.CounterValue("analysis.checker.strict-verify.diags"); n != 1 {
		t.Errorf("per-checker diag counter = %d, want 1", n)
	}
	if len(eng.All) != 1 {
		t.Errorf("engine accumulated %d diagnostics, want 1", len(eng.All))
	}
}

// TestRenderGolden pins the canonical rendering: sorted order and the
// severity/checker/location format.
func TestRenderGolden(t *testing.T) {
	ds := analysis.Diagnostics{
		{Checker: "lint", Sev: analysis.Warning, Func: "zeta", Block: "entry", Instr: "tmp", Msg: "result of side-effect-free add is never used"},
		{Checker: "merge-audit", Sev: analysis.Error, Func: "alpha", Block: "entry", Instr: "call", Msg: "call site still targets deleted function @old"},
		{Checker: "strict-verify", Sev: analysis.Error, Func: "alpha", Msg: "function defined 2 times in the module"},
		{Checker: "lint", Sev: analysis.Info, Msg: "module-scope note"},
		{Checker: "strict-verify", Sev: analysis.Error, Func: "alpha", Block: "entry", Instr: "call", Msg: "another finding on the same instruction"},
	}
	got := ds.RenderString()

	goldenPath := filepath.Join("testdata", "render.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate by hand): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendering diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Rendering must not depend on emission order.
	rev := append(analysis.Diagnostics(nil), ds...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev.RenderString() != got {
		t.Error("rendering depends on emission order")
	}
}

func TestSeverityAndCount(t *testing.T) {
	ds := analysis.Diagnostics{
		{Sev: analysis.Info}, {Sev: analysis.Warning}, {Sev: analysis.Error}, {Sev: analysis.Error},
	}
	if got := ds.Count(analysis.Error); got != 2 {
		t.Errorf("Count(Error) = %d, want 2", got)
	}
	if got := ds.Count(analysis.Warning); got != 3 {
		t.Errorf("Count(Warning) = %d, want 3", got)
	}
	if got := ds.Count(analysis.Info); got != 4 {
		t.Errorf("Count(Info) = %d, want 4", got)
	}
	if analysis.Info.String() != "info" || analysis.Warning.String() != "warning" || analysis.Error.String() != "error" {
		t.Error("severity names changed; they are part of the rendering contract")
	}
}
