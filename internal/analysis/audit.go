package analysis

import (
	"fmt"

	"f3m/internal/ir"
	"f3m/internal/merge"
)

// CheckerMergeAudit names the merge auditor in diagnostics.
const CheckerMergeAudit = "merge-audit"

// AuditCommit statically validates one committed merge against the
// module, proving the properties whose silent violation is exactly the
// bug class the paper's Section III-E fixes chase:
//
//   - the merged function is in the module and carries an i1
//     discriminator as its first parameter;
//   - the discriminator feeds only control decisions (condbr and
//     select conditions), i.e. it channels every diverging path and
//     never leaks into computation;
//   - a thunked original keeps its name and signature and forwards
//     exactly its own parameters (per the recorded parameter map, undef
//     for unshared slots) plus the correct discriminator constant;
//   - a deleted original is gone from the module and nothing —
//     no call site, no address-taken operand — still references it;
//   - every remaining direct call of the merged function passes the
//     full merged parameter list, discriminator first.
//
// The module-wide reference scan is one linear walk; it also catches
// dangling references to functions deleted by earlier commits.
func AuditCommit(mgr *Manager, m *ir.Module, info *merge.CommitInfo) Diagnostics {
	// A commit touches a known set of functions: the merged one is new,
	// the originals were thunked or deleted, and CommitInfo.Callers had
	// call sites rewritten in place. Invalidating exactly that set keeps
	// every other function's cached facts live across the commit. The
	// call graph has new edges module-wide, so it is always dropped.
	mgr.Invalidate(info.Merged)
	mgr.Invalidate(info.A.Fn)
	mgr.Invalidate(info.B.Fn)
	for _, caller := range info.Callers {
		mgr.Invalidate(caller)
	}
	mgr.cg = nil
	mgr.cgMod = nil

	var ds Diagnostics
	errf := func(fn, blk, instr, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Checker: CheckerMergeAudit, Sev: Error,
			Func: fn, Block: blk, Instr: instr,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	g := info.Merged
	if m.Func(g.Name()) != g {
		errf(g.Name(), "", "", "merged function is not in the module")
		return ds
	}
	ctx := m.Ctx
	if len(g.Params) == 0 || g.Params[0].Ty != ctx.I1 {
		errf(g.Name(), "", "", "merged function lacks a leading i1 discriminator parameter")
	} else {
		ds = append(ds, auditDiscriminator(g)...)
	}

	ds = append(ds, auditSide(m, g, info.A, true)...)
	ds = append(ds, auditSide(m, g, info.B, false)...)

	// One walk over the module: dangling function references (the
	// deleted originals, or leftovers of earlier commits) and the shape
	// of every call site that targets the merged function.
	cg := mgr.CallGraphOf(m)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, op := range in.Operands {
					callee, ok := op.(*ir.Function)
					if !ok {
						continue
					}
					isCallee := (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0
					if !cg.Present[callee] {
						kind := "reference to"
						if isCallee {
							kind = "call site still targets"
						}
						errf(f.Name(), b.Name(), instrLabel(in),
							"%s deleted function @%s", kind, callee.Name())
						continue
					}
					if isCallee && callee == g {
						ds = append(ds, auditMergedCall(f, b, in, g)...)
					}
				}
			}
		}
	}
	return ds
}

// auditDiscriminator checks that every use of the merged function's
// discriminator parameter is a control decision: the condition slot of
// a condbr or select. Any other use means a diverging path was wired
// into computation instead of being channelled by the identifier.
func auditDiscriminator(g *ir.Function) Diagnostics {
	var ds Diagnostics
	fid := ir.Value(g.Params[0])
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			for i, op := range in.Operands {
				if op != fid {
					continue
				}
				condPos := (in.Op == ir.OpCondBr || in.Op == ir.OpSelect) && i == 0
				if !condPos {
					ds = append(ds, Diagnostic{
						Checker: CheckerMergeAudit, Sev: Error,
						Func: g.Name(), Block: b.Name(), Instr: instrLabel(in),
						Msg: fmt.Sprintf("discriminator %%%s used outside a condbr/select condition (operand %d of %s)",
							g.Params[0].Name(), i, in.Op),
					})
				}
			}
		}
	}
	return ds
}

// auditSide validates the post-commit state of one replaced original.
func auditSide(m *ir.Module, g *ir.Function, side merge.CommitSide, idA bool) Diagnostics {
	var ds Diagnostics
	errf := func(blk, instr, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Checker: CheckerMergeAudit, Sev: Error,
			Func: side.Name, Block: blk, Instr: instr,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	if !side.Thunked {
		if m.Func(side.Name) == side.Fn {
			errf("", "", "deleted original is still in the module")
		}
		return ds
	}

	f := side.Fn
	if m.Func(side.Name) != f {
		errf("", "", "thunk is not in the module under the original name")
		return ds
	}
	if f.Sig != side.Sig {
		errf("", "", "thunk signature %s differs from the original %s", f.Sig, side.Sig)
		return ds
	}
	if len(f.Blocks) != 1 {
		errf("", "", "thunk has %d blocks, want 1", len(f.Blocks))
		return ds
	}
	b := f.Blocks[0]
	if len(b.Instrs) != 2 {
		errf(b.Name(), "", "thunk body has %d instructions, want call+ret", len(b.Instrs))
		return ds
	}
	call, ret := b.Instrs[0], b.Instrs[1]
	if call.Op != ir.OpCall || call.Operands[0] != ir.Value(g) {
		errf(b.Name(), instrLabel(call), "thunk does not call the merged function @%s", g.Name())
		return ds
	}
	args := call.CallArgs()
	if len(args) != len(g.Params) {
		errf(b.Name(), instrLabel(call), "thunk passes %d arguments, merged function has %d parameters",
			len(args), len(g.Params))
		return ds
	}
	if c, ok := args[0].(*ir.Const); !ok || c.Ty != m.Ctx.I1 || (c.IntVal != 0) == !idA {
		errf(b.Name(), instrLabel(call), "thunk discriminator argument %s, want i1 %v", args[0].Ident(), idA)
	}
	for i := 1; i < len(g.Params); i++ {
		if oi, ok := side.ParamMap[i]; ok {
			if oi < 0 || oi >= len(f.Params) {
				errf(b.Name(), instrLabel(call), "parameter map slot %d points at argument %d of %d", i, oi, len(f.Params))
				continue
			}
			if args[i] != ir.Value(f.Params[oi]) {
				errf(b.Name(), instrLabel(call),
					"thunk argument %d is %s, want forwarded parameter %%%s", i, args[i].Ident(), f.Params[oi].Name())
			}
			continue
		}
		c, ok := args[i].(*ir.Const)
		if !ok || !c.Undef {
			errf(b.Name(), instrLabel(call), "thunk argument %d is %s, want undef (unshared slot)", i, args[i].Ident())
		} else if c.Ty != g.Params[i].Ty {
			errf(b.Name(), instrLabel(call), "thunk undef argument %d has type %s, want %s", i, c.Ty, g.Params[i].Ty)
		}
	}
	if ret.Op != ir.OpRet {
		errf(b.Name(), instrLabel(ret), "thunk does not end in ret")
		return ds
	}
	if g.ReturnType().IsVoid() {
		if len(ret.Operands) != 0 {
			errf(b.Name(), instrLabel(ret), "void thunk returns a value")
		}
	} else if len(ret.Operands) != 1 || ret.Operands[0] != ir.Value(call) {
		errf(b.Name(), instrLabel(ret), "thunk does not return the merged call's result")
	}
	return ds
}

// auditMergedCall checks the shape of one rewritten call site: full
// merged arity with an i1 discriminator in the leading slot.
func auditMergedCall(f *ir.Function, b *ir.Block, in *ir.Instr, g *ir.Function) Diagnostics {
	var ds Diagnostics
	errf := func(format string, args ...any) {
		ds = append(ds, Diagnostic{
			Checker: CheckerMergeAudit, Sev: Error,
			Func: f.Name(), Block: b.Name(), Instr: instrLabel(in),
			Msg: fmt.Sprintf(format, args...),
		})
	}
	args := in.CallArgs()
	if len(args) != len(g.Params) {
		errf("call to merged @%s passes %d arguments, want %d", g.Name(), len(args), len(g.Params))
		return ds
	}
	if len(args) > 0 && args[0].Type() != g.Params[0].Ty {
		errf("call to merged @%s passes %s discriminator, want i1", g.Name(), args[0].Type())
	}
	return ds
}
