module f3m

go 1.22
