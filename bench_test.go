package f3m_test

// One benchmark per table and figure of the paper's evaluation (the
// experiment registry runs at Tiny scale so `go test -bench=.`
// completes in minutes), plus headline micro-benchmarks for the
// mechanisms the paper's speedups come from: exhaustive vs LSH ranking,
// MinHash generation, and the merge operation itself.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"f3m/internal/align"
	"f3m/internal/analysis/summary"
	"f3m/internal/core"
	"f3m/internal/experiments"
	"f3m/internal/fingerprint"
	"f3m/internal/irgen"
	"f3m/internal/lsh"
	"f3m/internal/merge"
	"f3m/internal/obs"
)

func benchOptions() experiments.Options {
	return experiments.Options{Seed: 20220402, Tiny: true, Repeats: 1}
}

// benchExperiment runs a registered experiment as a benchmark body.
func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := run(o)
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// --- one bench per paper table/figure ---

func BenchmarkTable1SuiteGen(b *testing.B)               { benchExperiment(b, "table1") }
func BenchmarkFig3HyFMBreakdown(b *testing.B)            { benchExperiment(b, "fig3") }
func BenchmarkFig4FreqCorrelation(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig6SelectedPairHistogram(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig9ContributionBySimilarity(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10MinHashCorrelation(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11SizeReduction(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12CompileTime(b *testing.B)             { benchExperiment(b, "fig12") }
func BenchmarkFig13StageBreakdown(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14ThresholdSweep(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15KRSweep(b *testing.B)                 { benchExperiment(b, "fig15") }
func BenchmarkFig16BucketCap(b *testing.B)               { benchExperiment(b, "fig16") }
func BenchmarkFig17RuntimeImpact(b *testing.B)           { benchExperiment(b, "fig17") }
func BenchmarkExtProfile(b *testing.B)                   { benchExperiment(b, "ext-profile") }

// BenchmarkMinBlockRatio ablates the block-pair acceptance threshold:
// lower values merge more partial blocks (more guarded diamonds),
// higher values only merge nearly identical blocks.
func BenchmarkMinBlockRatio(b *testing.B) {
	spec := irgen.SuiteSpec{Name: "ablate", Funcs: 400, AvgInstrs: 22, CloneFraction: 0.45}
	for _, ratio := range []float64{0.25, 0.5, 0.75, 1.0} {
		b.Run(fmt.Sprintf("ratio=%.2f", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := irgen.Generate(spec.Config(9)).Module
				cfg := core.DefaultConfig(core.F3MStatic)
				cfg.MergeOpts.MinBlockRatio = ratio
				b.StartTimer()
				rep, err := core.Run(m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*rep.Reduction(), "size-reduction-%")
			}
		})
	}
}

// --- headline mechanism benchmarks ---

// BenchmarkRanking compares the cost of pairing every function with a
// candidate under exhaustive opcode-frequency search (HyFM) vs MinHash
// + LSH (F3M), across population sizes. This is the paper's Figure 3 /
// Figure 13 phenomenon reduced to its core.
func BenchmarkRanking(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		pop := irgen.GenerateEncoded(7, n, 25, 0.4)

		b.Run(fmt.Sprintf("HyFM-exhaustive/n=%d", n), func(b *testing.B) {
			type freq [64]int32
			fps := make([]freq, len(pop.Seqs))
			for i, seq := range pop.Seqs {
				for _, e := range seq {
					fps[i][uint32(e)&63]++
				}
			}
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				for i := range fps {
					best, bestD := -1, int32(1<<30)
					for j := range fps {
						if i == j {
							continue
						}
						var d int32
						for k := 0; k < 64; k++ {
							x := fps[i][k] - fps[j][k]
							if x < 0 {
								x = -x
							}
							d += x
						}
						if d < bestD {
							best, bestD = j, d
						}
					}
					_ = best
				}
			}
		})

		b.Run(fmt.Sprintf("F3M-LSH/n=%d", n), func(b *testing.B) {
			cfg := (&fingerprint.Config{K: 200, ShingleSize: 2, Seed: 0xF3}).Prepare()
			for it := 0; it < b.N; it++ {
				ix := lsh.NewIndex(lsh.DefaultParams())
				sigs := make([]fingerprint.MinHash, len(pop.Seqs))
				for i, seq := range pop.Seqs {
					sigs[i] = cfg.New(seq)
					ix.Insert(i, sigs[i])
				}
				for i := range sigs {
					ix.Best(i, sigs[i], 0)
				}
			}
		})

		b.Run(fmt.Sprintf("F3M-adaptive/n=%d", n), func(b *testing.B) {
			t, params, k := lsh.AdaptiveParams(n)
			cfg := (&fingerprint.Config{K: k, ShingleSize: 2, Seed: 0xF3}).Prepare()
			for it := 0; it < b.N; it++ {
				ix := lsh.NewIndex(params)
				sigs := make([]fingerprint.MinHash, len(pop.Seqs))
				for i, seq := range pop.Seqs {
					sigs[i] = cfg.New(seq)
					ix.Insert(i, sigs[i])
				}
				for i := range sigs {
					ix.Best(i, sigs[i], t)
				}
			}
		})
	}
}

// BenchmarkParallelPreprocessRank measures the stages the
// core.Config.Workers knob parallelizes — MinHash fingerprinting + LSH
// build (preprocess) and candidate ranking — on the largest generated
// module the pipeline benchmarks use. The per-op `preprocess+rank-ms`
// metric is the one to compare across worker counts (total ns/op also
// includes the deliberately sequential merge/commit loop, which Workers
// does not touch); the determinism tests in internal/core assert the
// merge decisions are byte-identical across worker counts, and the
// `merges` metric makes that visible here too. Worker fan-out only
// pays on a multicore machine (GOMAXPROCS > 1); on a single CPU the
// goroutine scheduling shows up as pure overhead.
func BenchmarkParallelPreprocessRank(b *testing.B) {
	spec := irgen.SuiteSpec{Name: "parallel", Funcs: 4000, AvgInstrs: 25, CloneFraction: 0.4}
	for _, strat := range []core.Strategy{core.F3MStatic, core.HyFM} {
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", strat, w), func(b *testing.B) {
				var stage time.Duration
				merges := 0
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m := irgen.Generate(spec.Config(11)).Module
					cfg := core.DefaultConfig(strat)
					cfg.Workers = w
					b.StartTimer()
					rep, err := core.Run(m, cfg)
					if err != nil {
						b.Fatal(err)
					}
					stage += rep.Times.Preprocess + rep.Times.RankSuccess + rep.Times.RankFail
					merges = rep.Merges
				}
				b.ReportMetric(float64(stage.Milliseconds())/float64(b.N), "preprocess+rank-ms")
				b.ReportMetric(float64(merges), "merges")
			})
		}
	}
}

// BenchmarkObsOverhead measures what the observability layer costs the
// whole pipeline: `off` is the default nil-handle configuration (the
// hooks reduce to one nil check each and must stay within noise of the
// pre-instrumentation pipeline), `traced` and `metered` enable the
// tracer and the metrics registry. Compare ns/op of the three
// sub-benchmarks; the acceptance bar is `off` within 2% of what
// BenchmarkPipeline/F3M measured before the hooks existed, i.e.
// disabled observability is free.
func BenchmarkObsOverhead(b *testing.B) {
	spec := irgen.SuiteSpec{Name: "bench", Funcs: 800, AvgInstrs: 22, CloneFraction: 0.45}
	modes := []struct {
		name string
		set  func(*core.Config)
	}{
		{"off", func(*core.Config) {}},
		{"traced", func(c *core.Config) { c.Tracer = obs.NewTracer() }},
		{"metered", func(c *core.Config) { c.Metrics = obs.NewMetrics() }},
		{"both", func(c *core.Config) { c.Tracer = obs.NewTracer(); c.Metrics = obs.NewMetrics() }},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := irgen.Generate(spec.Config(3)).Module
				cfg := core.DefaultConfig(core.F3MStatic)
				mode.set(&cfg)
				b.StartTimer()
				if _, err := core.Run(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeStage measures the merge/commit stage across
// -merge-workers settings. workers=1 is the plain sequential loop;
// workers=2+ adds speculative alignment workers that warm the shared
// alignment cache while the committer replays the sequential algorithm
// (the determinism tests in internal/core assert the Report is
// byte-identical across all settings, and the `merges` metric makes
// that visible here). The pooled DP buffers in internal/align are what
// keep allocs/op flat as worker count grows; `cache-hit-rate` is
// committer hits over committer lookups, so it shows how much aligned
// work speculation managed to run ahead of the commit loop. Wall-clock
// gains require GOMAXPROCS > 1 — on a single CPU the workers only add
// scheduling overhead. scripts/bench.sh records these numbers in
// BENCH_merge.json to track the trajectory across PRs.
func BenchmarkMergeStage(b *testing.B) {
	spec := irgen.SuiteSpec{Name: "mergebench", Funcs: 800, AvgInstrs: 22, CloneFraction: 0.45}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var hits, lookups int64
			merges := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := irgen.Generate(spec.Config(3)).Module
				cfg := core.DefaultConfig(core.F3MStatic)
				cfg.MergeWorkers = w
				cache := align.NewCache(0)
				cfg.MergeOpts.AlignCache = cache
				// Collect generator garbage outside the timed window so
				// ns/op reflects the merge stage, not irgen's leftovers.
				runtime.GC()
				b.StartTimer()
				rep, err := core.Run(m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st := cache.Stats()
				hits += st.Hits
				lookups += st.Hits + st.Misses
				merges = rep.Merges
				b.StartTimer()
			}
			if lookups > 0 {
				b.ReportMetric(float64(hits)/float64(lookups), "cache-hit-rate")
			}
			b.ReportMetric(float64(merges), "merges")
		})
	}
}

// BenchmarkAlignStrategies compares the sequence pipeline against the
// CFG-aware one on a population dense with block-permuted semantic
// twins — the adversarial input the canonical dominator-tree order was
// built for. Both runs use -check=validate so ns/op is apples to
// apples (f3m-cfg forces it). `align-score` is the mean alignment
// score over attempted pairs: the sequence aligner mis-pairs shuffled
// blocks and scores low, the canonical aligner recovers the original
// order and scores high, and `merges` shows what that buys at commit
// time. `block-moves` (cfg only) is the mean number of reordered block
// pairs per attempt. scripts/bench.sh records all of it in
// BENCH_align.json to track the trajectory across PRs.
func BenchmarkAlignStrategies(b *testing.B) {
	gcfg := irgen.Config{
		Seed: 3, Families: 60, FamilySizeMin: 2, FamilySizeMax: 3,
		Singletons: 30, BlocksMin: 8, BlocksMax: 14, InstrsMin: 2, InstrsMax: 4,
		MutationMin: 0, MutationMax: 0.3, Callers: 10, PermutedFraction: 1.0,
	}
	for _, tc := range []struct {
		name  string
		strat core.Strategy
	}{
		{"sequence", core.F3MStatic},
		{"cfg", core.F3MCFG},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var scoreSum, moveSum float64
			var scoreN, moveN int64
			merges := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := irgen.Generate(gcfg).Module
				cfg := core.DefaultConfig(tc.strat)
				// High-precision regime: at this threshold ranking only
				// surfaces near-identical pairs, so the twins' fate is
				// decided by fingerprint order — the axis under test.
				cfg.Threshold = 0.9
				cfg.Check = core.CheckValidate
				cfg.Metrics = obs.NewMetrics()
				runtime.GC()
				b.StartTimer()
				rep, err := core.Run(m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				merges = rep.Merges
				if h := rep.Metrics.Histogram("align.score", nil); h.Count() > 0 {
					scoreSum += h.Sum()
					scoreN += h.Count()
				}
				if h := rep.Metrics.Histogram("align.cfg.block_moves", nil); h.Count() > 0 {
					moveSum += h.Sum()
					moveN += h.Count()
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(merges), "merges")
			if scoreN > 0 {
				b.ReportMetric(scoreSum/float64(scoreN), "align-score")
			}
			if moveN > 0 {
				b.ReportMetric(moveSum/float64(moveN), "block-moves")
			}
		})
	}
}

// BenchmarkSummaryExtract measures the per-module half of the
// cross-module workflow: reducing a module to its merge summaries plus
// the versioned JSON encoding `f3m summary` writes. This is the work a
// build system repeats per changed module, so throughput
// (`summaries/s`) is the headline number and `bytes/func` tracks the
// summary format's weight — the whole point of summaries is shipping
// these bytes instead of IR. scripts/bench.sh records both in
// BENCH_summary.json to track the trajectory across PRs.
func BenchmarkSummaryExtract(b *testing.B) {
	spec := irgen.SuiteSpec{Name: "sumbench", Funcs: 800, AvgInstrs: 22, CloneFraction: 0.45}
	m := irgen.Generate(spec.Config(3)).Module
	b.ReportAllocs()
	b.ResetTimer()
	funcs, bytes := 0, 0
	for i := 0; i < b.N; i++ {
		ms := summary.Extract(m, summary.Params{}, nil, nil)
		enc, err := ms.Encode()
		if err != nil {
			b.Fatal(err)
		}
		funcs = ms.NumFuncs
		bytes = len(enc)
	}
	if funcs > 0 {
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(funcs)*float64(b.N)/s, "summaries/s")
		}
		b.ReportMetric(float64(bytes)/float64(funcs), "bytes/func")
	}
}

// BenchmarkMergePair measures one align+codegen+cleanup merge attempt.
func BenchmarkMergePair(b *testing.B) {
	cfg := irgen.DefaultConfig(5)
	cfg.Callers = 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := irgen.Generate(cfg).Module
		fa, fb := m.Func("fam0_v0"), m.Func("fam0_v1")
		b.StartTimer()
		res, err := merge.Pair(m, fa, fb, merge.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		merge.Discard(m, res)
		b.StartTimer()
	}
}

// BenchmarkPipeline measures whole-module merging per strategy on a
// mid-size module.
func BenchmarkPipeline(b *testing.B) {
	spec := irgen.SuiteSpec{Name: "bench", Funcs: 800, AvgInstrs: 22, CloneFraction: 0.45}
	for _, strat := range []core.Strategy{core.HyFM, core.F3MStatic, core.F3MAdaptive} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := irgen.Generate(spec.Config(3)).Module
				b.StartTimer()
				if _, err := core.Run(m, core.DefaultConfig(strat)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
