// watmerge compiles two revisions of a WebAssembly text module — the
// copy-evolved near-duplicate pattern function merging targets —
// links them LTO-style, merges with F3M under the translation
// validator, and verifies through the interpreter that the surviving
// entry point behaves identically.
package main

import (
	"fmt"
	"strings"

	"f3m/internal/core"
	"f3m/internal/interp"
	"f3m/internal/ir"
	"f3m/internal/wat"
)

// Revision 1: a pair of classification helpers and the entry point
// that folds a character into a checksum state.
const rev1 = `
(module $csum_v1
  (func $is_digit_v1 (param $c i32) (result i32)
    local.get $c i32.const 48 i32.ge_s
    local.get $c i32.const 57 i32.le_s
    i32.and)
  (func $mix_v1 (param $h i32) (param $c i32) (result i32)
    local.get $h i32.const 31 i32.mul
    local.get $c i32.add
    i32.const 65535 i32.and)
  (func $step_v1 (param $h i32) (param $c i32) (result i32)
    local.get $c call $is_digit_v1
    if (result i32)
      local.get $h local.get $c call $mix_v1
    else
      local.get $h
    end))
`

// Revision 2: the same helpers after a round of edits — a widened
// digit test and a different multiplier. Each is a near-duplicate of
// its v1 counterpart; the entry point changed shape (a loop) so it
// stays unmerged and observable.
const rev2 = `
(module $csum_v2
  (func $is_digit_v2 (param $c i32) (result i32)
    local.get $c i32.const 48 i32.ge_s
    local.get $c i32.const 70 i32.le_s
    i32.and)
  (func $mix_v2 (param $h i32) (param $c i32) (result i32)
    local.get $h i32.const 33 i32.mul
    local.get $c i32.add
    i32.const 65535 i32.and)
  (func $sum_v2 (param $seed i32) (param $n i32) (result i32)
    (local $i i32) (local $h i32)
    local.get $seed local.set $h
    block $done
      loop $head
        local.get $i local.get $n i32.ge_s
        br_if $done
        local.get $i i32.const 48 i32.add call $is_digit_v2
        if
          local.get $h local.get $i call $mix_v2 local.set $h
        end
        local.get $i i32.const 1 i32.add local.set $i
        br $head
      end
    end
    local.get $h))
`

func main() {
	build := func() *ir.Module {
		m1 := wat.MustCompile("csum_v1", rev1)
		m2 := wat.MustCompile("csum_v2", rev2)
		m, err := ir.LinkModules("csum", m1, m2)
		if err != nil {
			panic(err)
		}
		return m
	}

	// Reference outputs before merging, through both entry points.
	ref := build()
	type key struct{ a, b int64 }
	var inputs []key
	for _, a := range []int64{0, 1, 7, 42, 255} {
		for _, b := range []int64{0, 47, 48, 57, 58, 70, 9} {
			inputs = append(inputs, key{a, b})
		}
	}
	wantStep := map[key]int64{}
	wantSum := map[key]int64{}
	for _, in := range inputs {
		wantStep[in] = call2(ref, "step_v1", in.a, in.b)
		wantSum[in] = call2(ref, "sum_v2", in.a, in.b)
	}

	// Merge under the translation validator: every committed merge is
	// re-proved behaviourally equivalent before it lands.
	m := build()
	cfg := core.DefaultConfig(core.F3MStatic)
	cfg.Check = core.CheckValidate
	rep, err := core.Run(m, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("functions merged: %d pairs of %d functions\n", rep.Merges, rep.NumFuncs)
	fmt.Printf("size: %d -> %d (%.1f%% reduction)\n", rep.SizeBefore, rep.SizeAfter, 100*rep.Reduction())
	fmt.Printf("validation: %d diagnostics\n", len(rep.Diagnostics))

	for _, f := range m.Funcs {
		if strings.HasPrefix(f.Name(), "merged.") {
			fmt.Printf("\nmerged function:\n%s", ir.FuncString(f))
		}
	}

	// Differential check through the surviving entry points.
	bad := 0
	for _, in := range inputs {
		if got := call2(m, "step_v1", in.a, in.b); got != wantStep[in] {
			fmt.Printf("MISMATCH step_v1(%d,%d) = %d, want %d\n", in.a, in.b, got, wantStep[in])
			bad++
		}
		if got := call2(m, "sum_v2", in.a, in.b); got != wantSum[in] {
			fmt.Printf("MISMATCH sum_v2(%d,%d) = %d, want %d\n", in.a, in.b, got, wantSum[in])
			bad++
		}
	}
	if bad == 0 {
		fmt.Printf("\nverified: %d calls behave identically after merging\n", 2*len(inputs))
	}
}

func call2(m *ir.Module, fn string, a, b int64) int64 {
	f := m.Func(fn)
	out, err := interp.NewMachine(m).Call(f,
		interp.IntVal(m.Ctx.I32, a),
		interp.IntVal(m.Ctx.I32, b))
	if err != nil {
		panic(err)
	}
	return out.I
}
