// minicmerge compiles a mini-C translation unit full of copy-pasted
// handler functions — the redundancy pattern that motivates function
// merging — merges it with F3M, and verifies with the interpreter that
// behaviour is preserved.
package main

import (
	"fmt"

	"f3m/internal/core"
	"f3m/internal/interp"
	"f3m/internal/ir"
	"f3m/internal/minic"
)

// The unit models a little protocol dispatcher: the per-message
// handlers are structurally identical up to constants and one or two
// statements, exactly the near-duplicates sequence-alignment merging
// thrives on.
const src = `
int stats[8];

int checksum(int *p, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc ^ p[i] * 31;
  }
  return acc;
}

int handle_ping(int token, int len) {
  int buf[4];
  for (int i = 0; i < 4; i = i + 1) { buf[i] = token + i * 3; }
  stats[0] = stats[0] + 1;
  if (len > 64) { return -1; }
  return checksum(buf, 4) & 65535;
}

int handle_pong(int token, int len) {
  int buf[4];
  for (int i = 0; i < 4; i = i + 1) { buf[i] = token + i * 5; }
  stats[1] = stats[1] + 1;
  if (len > 128) { return -2; }
  return checksum(buf, 4) & 65535;
}

int handle_data(int token, int len) {
  int buf[4];
  for (int i = 0; i < 4; i = i + 1) { buf[i] = token + i * 7; }
  stats[2] = stats[2] + 1;
  if (len > 4096) { return -3; }
  return checksum(buf, 4) & 65535;
}

int dispatch(int kind, int token, int len) {
  if (kind == 0) { return handle_ping(token, len); }
  if (kind == 1) { return handle_pong(token, len); }
  return handle_data(token, len);
}
`

func main() {
	build := func() *ir.Module { return minic.MustCompile("proto", src) }

	// Reference outputs before merging.
	ref := build()
	type key struct{ kind, token, len int64 }
	var inputs []key
	for kind := int64(0); kind < 3; kind++ {
		for _, tok := range []int64{1, 42, 999} {
			for _, ln := range []int64{10, 100, 10000} {
				inputs = append(inputs, key{kind, tok, ln})
			}
		}
	}
	want := map[key]int64{}
	for _, in := range inputs {
		want[in] = callDispatch(ref, in.kind, in.token, in.len)
	}

	// Merge.
	m := build()
	before := core.ModuleCost(m)
	rep, err := core.Run(m, core.DefaultConfig(core.F3MStatic))
	if err != nil {
		panic(err)
	}
	fmt.Printf("functions merged: %d of %d candidates\n", rep.Merges*2, rep.NumFuncs)
	fmt.Printf("size: %d -> %d (%.1f%% reduction)\n", before, core.ModuleCost(m), 100*rep.Reduction())

	// Show what the merger produced.
	for _, f := range m.Funcs {
		if len(f.Name()) > 6 && f.Name()[:6] == "merged" {
			fmt.Printf("\nmerged function:\n%s", ir.FuncString(f))
		}
	}

	// Differential check through the surviving dispatcher.
	bad := 0
	for _, in := range inputs {
		if got := callDispatch(m, in.kind, in.token, in.len); got != want[in] {
			fmt.Printf("MISMATCH dispatch(%d,%d,%d) = %d, want %d\n", in.kind, in.token, in.len, got, want[in])
			bad++
		}
	}
	if bad == 0 {
		fmt.Printf("\nverified: %d dispatch calls behave identically after merging\n", len(inputs))
	}
}

func callDispatch(m *ir.Module, kind, token, ln int64) int64 {
	f := m.Func("dispatch")
	mach := interp.NewMachine(m)
	out, err := mach.Call(f,
		interp.IntVal(m.Ctx.I32, kind),
		interp.IntVal(m.Ctx.I32, token),
		interp.IntVal(m.Ctx.I32, ln))
	if err != nil {
		panic(err)
	}
	return out.I
}
