// Service quickstart: start the merge-as-a-service daemon in-process,
// stream two synthetic modules into it over real HTTP, query for
// near-duplicates, trigger an incremental merge, and snapshot the
// state — the whole SERVING.md walkthrough with no external tools.
//
// With -emit-module the program instead prints one synthetic module's
// textual IR to stdout (handy as input for the curl walkthrough in
// SERVING.md) and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/obs"
	"f3m/internal/serve"
)

// module renders a synthetic module whose function names carry prefix.
func module(seed int64, prefix string) string {
	cfg := irgen.DefaultConfig(seed)
	cfg.Families = 2
	cfg.FamilySizeMin, cfg.FamilySizeMax = 2, 3
	cfg.Singletons = 2
	cfg.Callers = 1
	res := irgen.Generate(cfg)
	for _, f := range res.Module.Funcs {
		res.Module.RenameFunc(f, prefix+f.Name())
	}
	return ir.ModuleString(res.Module)
}

// post sends one JSON request and decodes the reply into out.
func post(base, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %d %v", path, resp.StatusCode, e)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func main() {
	emit := flag.Bool("emit-module", false, "print one synthetic module's IR and exit")
	flag.Parse()
	if *emit {
		fmt.Print(module(7, "a_"))
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service example:", err)
		os.Exit(1)
	}
}

func run() error {
	// Boot the daemon on a loopback port, exactly as `f3m serve` does.
	cfg := serve.DefaultConfig()
	cfg.Metrics = obs.NewMetrics()
	cfg.SnapshotPath = filepath.Join(os.TempDir(), "f3m-example.snap")
	srv := serve.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon listening on", base)

	// Stream two modules in.
	var info serve.ModuleInfo
	if err := post(base, "/v1/modules", map[string]string{"name": "a", "ir": module(7, "a_")}, &info); err != nil {
		return err
	}
	fmt.Printf("submitted module a: %d mergeable functions indexed\n", len(info.Funcs))
	if err := post(base, "/v1/modules", map[string]string{"name": "b", "ir": module(8, "b_")}, nil); err != nil {
		return err
	}
	fmt.Println("submitted module b")

	// Who looks like a's first function?
	var q struct {
		Matches []serve.Match `json:"matches"`
	}
	probe := map[string]any{"module": "a", "func": info.Funcs[0], "min_similarity": 0.3, "k": 3}
	if err := post(base, "/v1/query", probe, &q); err != nil {
		return err
	}
	fmt.Printf("near-duplicates of a.%s:\n", info.Funcs[0])
	for _, m := range q.Matches {
		fmt.Printf("  %s.%s  similarity %.2f\n", m.Module, m.Func, m.Similarity)
	}

	// Merge the live corpus.
	var sum serve.MergeSummary
	if err := post(base, "/v1/merge", map[string]any{}, &sum); err != nil {
		return err
	}
	fmt.Printf("merge: %d attempts, %d merged, size %d -> %d (report key %s…)\n",
		sum.Attempts, sum.Merges, sum.SizeBefore, sum.SizeAfter, sum.ReportKey[:12])

	// Snapshot the state, then shut down cleanly.
	var snap serve.SnapshotInfo
	if err := post(base, "/v1/snapshot", map[string]any{}, &snap); err != nil {
		return err
	}
	defer os.Remove(snap.Path)
	fmt.Printf("snapshot: %d modules, %d bytes -> %s\n", snap.Modules, snap.Bytes, snap.Path)

	if err := srv.Close(context.Background()); err != nil {
		return err
	}
	fmt.Println("drained and shut down; see SERVING.md for the full API")
	return nil
}
