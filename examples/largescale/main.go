// largescale demonstrates the paper's headline result: as the function
// count grows, HyFM's exhaustive quadratic ranking explodes while
// F3M's LSH ranking stays just-above-linear. Ranking works purely on
// fingerprints, so this example scales to large populations using
// encoded instruction streams (no full IR needed) — the same trick the
// scaling benchmarks use.
package main

import (
	"fmt"
	"time"

	"f3m/internal/fingerprint"
	"f3m/internal/irgen"
	"f3m/internal/lsh"
)

func main() {
	fmt.Println("ranking time vs population size (fingerprint comparisons)")
	fmt.Printf("%10s  %14s  %14s  %10s  %14s\n", "functions", "HyFM (exhaust)", "F3M (LSH)", "speedup", "F3M-adapt")
	for _, n := range []int{1000, 2000, 4000, 8000, 16000, 32000} {
		pop := irgen.GenerateEncoded(7, n, 25, 0.4)

		hyfm := rankExhaustive(pop)
		f3m := rankLSH(pop, 200, lsh.DefaultParams(), 0)
		t, params, k := lsh.AdaptiveParams(n)
		adapt := rankLSH(pop, k, params, t)

		fmt.Printf("%10d  %14v  %14v  %9.1fx  %14v\n",
			n, hyfm.Round(time.Millisecond), f3m.Round(time.Millisecond),
			float64(hyfm)/float64(f3m), adapt.Round(time.Millisecond))
	}
	fmt.Println("\n(the paper's Chrome run: HyFM ranking ~46h, F3M minutes — a 94x-597x merge-stage speedup)")
}

// rankExhaustive mimics HyFM: every function's opcode-frequency
// fingerprint is compared against every other to find its nearest
// neighbour.
func rankExhaustive(pop *irgen.EncodedPopulation) time.Duration {
	// Build opcode-frequency-like fingerprints from the encoded
	// streams (low 6 bits of the encoding are the opcode).
	type freq [64]int32
	fps := make([]freq, len(pop.Seqs))
	for i, seq := range pop.Seqs {
		for _, e := range seq {
			fps[i][uint32(e)&63]++
		}
	}
	start := time.Now()
	for i := range fps {
		best, bestD := -1, int32(1<<30)
		for j := range fps {
			if i == j {
				continue
			}
			var d int32
			for k := 0; k < 64; k++ {
				x := fps[i][k] - fps[j][k]
				if x < 0 {
					x = -x
				}
				d += x
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
		_ = best
	}
	return time.Since(start)
}

// rankLSH mimics F3M: MinHash fingerprints indexed through LSH, one
// query per function.
func rankLSH(pop *irgen.EncodedPopulation, k int, params lsh.Params, threshold float64) time.Duration {
	cfg := (&fingerprint.Config{K: k, ShingleSize: 2, Seed: 0xF3}).Prepare()
	sigs := make([]fingerprint.MinHash, len(pop.Seqs))
	start := time.Now()
	ix := lsh.NewIndex(params)
	for i, seq := range pop.Seqs {
		sigs[i] = cfg.New(seq)
		ix.Insert(i, sigs[i])
	}
	for i := range sigs {
		ix.Best(i, sigs[i], threshold)
	}
	return time.Since(start)
}
