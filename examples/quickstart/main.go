// Quickstart: build two similar functions with the IR builder API,
// merge them with F3M, and inspect the result.
package main

import (
	"fmt"
	"os"

	"f3m/internal/core"
	"f3m/internal/ir"
)

// buildScaledSat creates
//
//	i32 name(i32 %x, i32 %y) {
//	    r = x + y*scale
//	    return r > cap ? cap : r
//	}
//
// — a family of near-identical functions differing only in constants,
// the bread-and-butter input of function merging (think template
// instantiations or copy-pasted handlers).
func buildScaledSat(m *ir.Module, name string, scale, cap int64) *ir.Function {
	c := m.Ctx
	f := m.NewFunc(name, c.Func(c.I32, c.I32, c.I32), "x", "y")
	entry := f.NewBlock("entry")
	sat := f.NewBlock("sat")
	done := f.NewBlock("done")

	bd := ir.NewBuilder(entry)
	scaled := bd.Mul(f.Params[1], ir.ConstInt(c.I32, scale))
	r := bd.Add(f.Params[0], scaled)
	over := bd.ICmp(ir.PredSGT, r, ir.ConstInt(c.I32, cap))
	bd.CondBr(over, sat, done)

	bd.SetBlock(sat)
	bd.Br(done)

	bd.SetBlock(done)
	phi := bd.Phi(c.I32)
	phi.AddIncoming(r, entry)
	phi.AddIncoming(ir.ConstInt(c.I32, cap), sat)
	bd.Ret(phi)
	return f
}

func main() {
	m := ir.NewModule("quickstart")
	buildScaledSat(m, "sat_volume", 3, 1000)
	buildScaledSat(m, "sat_bright", 7, 4096)
	buildScaledSat(m, "sat_gain", 2, 512)
	if err := ir.VerifyModule(m); err != nil {
		panic(err)
	}

	fmt.Println("--- before merging ---")
	_ = ir.WriteModule(os.Stdout, m)
	before := core.ModuleCost(m)

	rep, err := core.Run(m, core.DefaultConfig(core.F3MStatic))
	if err != nil {
		panic(err)
	}

	fmt.Println("\n--- after merging ---")
	_ = ir.WriteModule(os.Stdout, m)
	fmt.Printf("\nmerged %d pairs; size %d -> %d (%.1f%% reduction)\n",
		rep.Merges, before, core.ModuleCost(m), 100*rep.Reduction())
}
