// adaptive prints how F3M's adaptive policy (Equations 3 and 4 of the
// paper) scales the similarity threshold, band count and fingerprint
// size with program size, then contrasts static and adaptive runs on a
// generated module.
package main

import (
	"fmt"

	"f3m/internal/core"
	"f3m/internal/irgen"
	"f3m/internal/lsh"
)

func main() {
	fmt.Println("adaptive parameters vs program size (Equations 3 and 4):")
	fmt.Printf("%12s  %9s  %6s  %4s  %28s\n", "functions", "threshold", "bands", "k", "discovery P at s=t+0.1")
	for _, n := range []int{500, 1837, 5000, 10000, 45000, 100000, 1200000, 20000000} {
		t, params, k := lsh.AdaptiveParams(n)
		p := params.MatchProbability(t + 0.1)
		fmt.Printf("%12d  %9.3f  %6d  %4d  %27.1f%%\n", n, t, params.Bands, k, 100*p)
	}

	fmt.Println("\nstatic vs adaptive on a generated module:")
	spec := irgen.SuiteSpec{Name: "demo", Funcs: 3000, AvgInstrs: 22, CloneFraction: 0.45}
	for _, strat := range []core.Strategy{core.F3MStatic, core.F3MAdaptive} {
		m := irgen.Generate(spec.Config(11)).Module
		rep, err := core.Run(m, core.DefaultConfig(strat))
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-10s t=%.3f k=%-3d b=%-3d  merges=%-4d reduction=%.2f%%  pass=%v\n",
			rep.Strategy, rep.Threshold, rep.K, rep.Bands, rep.Merges,
			100*rep.Reduction(), rep.Times.Total().Round(1000000))
	}
	fmt.Println("\n(paper: the adaptive policy matches static code-size reduction while")
	fmt.Println(" cutting ranking cost; on Chrome it raises the merge speedup from 94x to 597x)")
}
