// Near-duplicate protocol handlers: prime function-merging input.
int stats[8];

int checksum(int *p, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) { acc = acc ^ p[i] * 31; }
  return acc;
}

int handle_ping(int token, int len) {
  int buf[4];
  for (int i = 0; i < 4; i = i + 1) { buf[i] = token + i * 3; }
  stats[0] = stats[0] + 1;
  if (len > 64) { return -1; }
  return checksum(buf, 4) & 65535;
}

int handle_pong(int token, int len) {
  int buf[4];
  for (int i = 0; i < 4; i = i + 1) { buf[i] = token + i * 5; }
  stats[1] = stats[1] + 1;
  if (len > 128) { return -2; }
  return checksum(buf, 4) & 65535;
}
