// Package f3m is a from-scratch Go reproduction of "F3M: Fast Focused
// Function Merging" (CGO 2022): function merging by sequence alignment
// with MinHash fingerprints and locality-sensitive-hashing candidate
// search, together with every substrate the paper depends on — a typed
// SSA IR with parser, printer, verifier and interpreter; the scalar
// passes the merger needs (RegToMem, Mem2Reg, SimplifyCFG, DCE); the
// HyFM baseline; a mini-C frontend; synthetic workload generation; and
// a harness that regenerates each table and figure of the paper's
// evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// library lives under internal/; cmd/f3m and cmd/f3m-experiments are
// the executables, and examples/ holds runnable walkthroughs.
package f3m
