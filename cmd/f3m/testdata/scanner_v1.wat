;; Revision 1 of a tiny wat token scanner, modeled on the two
;; wazero text-parser revisions in SNIPPETS.md: classification
;; helpers, a rolling token hash, and a field dispatcher. Revision 2
;; (scanner_v2.wat) carries the same helpers with small edits, giving
;; the merger the near-duplicate cross-revision pairs the paper
;; targets.
(module $scanner_v1
  (func $is_space_v1 (param $c i32) (result i32)
    local.get $c
    i32.const 32
    i32.eq
    local.get $c
    i32.const 9
    i32.eq
    i32.or
    local.get $c
    i32.const 10
    i32.eq
    i32.or
    local.get $c
    i32.const 13
    i32.eq
    i32.or)

  (func $is_idchar_v1 (param $c i32) (result i32)
    local.get $c
    i32.const 97
    i32.ge_s
    local.get $c
    i32.const 122
    i32.le_s
    i32.and
    local.get $c
    i32.const 48
    i32.ge_s
    local.get $c
    i32.const 57
    i32.le_s
    i32.and
    i32.or
    local.get $c
    i32.const 46
    i32.eq
    i32.or
    local.get $c
    i32.const 95
    i32.eq
    i32.or)

  (func $hash_token_v1 (param $h i32) (param $c i32) (result i32)
    local.get $h
    i32.const 31
    i32.mul
    local.get $c
    i32.add
    i32.const 16777215
    i32.and)

  (func $scan_ident_v1 (param $seed i32) (param $len i32) (result i32)
    (local $i i32) (local $h i32)
    local.get $seed
    local.set $h
    block $done
      loop $head
        local.get $i
        local.get $len
        i32.ge_s
        br_if $done
        local.get $h
        local.get $seed
        local.get $i
        i32.add
        call $hash_token_v1
        local.set $h
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $head
      end
    end
    local.get $h)

  (func $field_kind_v1 (param $tok i32) (param $depth i32) (result i32)
    local.get $tok
    i32.const 1
    i32.eq
    if (result i32)
      local.get $depth
      i32.const 1
      i32.add
      i32.const 8
      i32.shl
      i32.const 1
      i32.or
    else
      local.get $tok
      i32.const 2
      i32.eq
      if (result i32)
        local.get $depth
        i32.const 8
        i32.shl
        i32.const 2
        i32.or
      else
        local.get $tok
        i32.const 3
        i32.eq
        if (result i32)
          local.get $depth
          i32.const 8
          i32.shl
          i32.const 3
          i32.or
        else
          i32.const 0
        end
      end
    end)

  ;; Entry point: classify one character against the scanner state.
  ;; Unlike the helpers it has no v2 near-duplicate (revision 2
  ;; restructured its driver into a loop), so it survives merging with
  ;; its call sites rewritten to the merged helpers — the function the
  ;; differential test drives.
  (func $next_token_v1 (param $state i32) (param $c i32) (result i32)
    local.get $c
    call $is_space_v1
    if (result i32)
      local.get $state
    else
      local.get $c
      call $is_idchar_v1
      if (result i32)
        local.get $state
        local.get $c
        call $hash_token_v1
      else
        local.get $c
        local.get $state
        call $field_kind_v1
      end
    end)
)
