;; Revision 2 of the scanner in scanner_v1.wat: is_space gains a
;; form-feed clause, the hash multiplier changes, scan_ident skips
;; space characters, and field_kind learns a fourth field. Each
;; function is a near-duplicate of its v1 counterpart.
(module $scanner_v2
  (func $is_space_v2 (param $c i32) (result i32)
    local.get $c
    i32.const 32
    i32.eq
    local.get $c
    i32.const 9
    i32.eq
    i32.or
    local.get $c
    i32.const 10
    i32.eq
    i32.or
    local.get $c
    i32.const 12
    i32.eq
    i32.or)

  (func $is_idchar_v2 (param $c i32) (result i32)
    local.get $c
    i32.const 97
    i32.ge_s
    local.get $c
    i32.const 122
    i32.le_s
    i32.and
    local.get $c
    i32.const 48
    i32.ge_s
    local.get $c
    i32.const 57
    i32.le_s
    i32.and
    i32.or
    local.get $c
    i32.const 46
    i32.eq
    i32.or
    local.get $c
    i32.const 36
    i32.eq
    i32.or)

  (func $hash_token_v2 (param $h i32) (param $c i32) (result i32)
    local.get $h
    i32.const 33
    i32.mul
    local.get $c
    i32.add
    i32.const 16777215
    i32.and)

  (func $scan_ident_v2 (param $seed i32) (param $len i32) (result i32)
    (local $i i32) (local $h i32)
    local.get $seed
    local.set $h
    block $done
      loop $head
        local.get $i
        local.get $len
        i32.ge_s
        br_if $done
        local.get $h
        local.get $seed
        local.get $i
        i32.add
        call $hash_token_v2
        local.set $h
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $head
      end
    end
    local.get $h)

  (func $field_kind_v2 (param $tok i32) (param $depth i32) (result i32)
    local.get $tok
    i32.const 1
    i32.eq
    if (result i32)
      local.get $depth
      i32.const 1
      i32.add
      i32.const 8
      i32.shl
      i32.const 1
      i32.or
    else
      local.get $tok
      i32.const 2
      i32.eq
      if (result i32)
        local.get $depth
        i32.const 8
        i32.shl
        i32.const 2
        i32.or
      else
        local.get $tok
        i32.const 4
        i32.eq
        if (result i32)
          local.get $depth
          i32.const 8
          i32.shl
          i32.const 4
          i32.or
        else
          i32.const 0
        end
      end
    end)

  ;; Revision 2 driver: folds a whole line through the helpers in a
  ;; loop. Deliberately a different shape from next_token_v1 so the
  ;; two drivers never rank as a pair; both survive merging as the
  ;; callers of the merged helpers.
  (func $scan_line_v2 (param $seed i32) (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    local.get $seed
    local.set $acc
    block $done
      loop $head
        local.get $i
        local.get $n
        i32.ge_s
        br_if $done
        local.get $acc
        local.get $i
        call $hash_token_v2
        local.get $i
        i32.const 3
        i32.and
        local.get $seed
        call $field_kind_v2
        i32.add
        local.set $acc
        local.get $i
        i32.const 97
        i32.add
        call $is_idchar_v2
        if
          local.get $acc
          local.get $seed
          local.get $i
          i32.const 3
          i32.and
          call $scan_ident_v2
          i32.xor
          local.set $acc
        end
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $head
      end
    end
    local.get $acc)
)
