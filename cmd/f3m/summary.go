package main

// The cross-module workflow: `f3m summary` reduces one module to a
// versioned summary file, `f3m merge -summaries` links the summarized
// modules and merges optimistically along a plan computed from the
// summaries alone, with every commit re-proved by the translation
// validator (see internal/analysis/summary and DESIGN.md,
// "Cross-module merging").

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"f3m/internal/analysis"
	"f3m/internal/analysis/summary"
	"f3m/internal/core"
	"f3m/internal/ir"
	"f3m/internal/obs"
)

// runSummary implements `f3m summary`: extract a module's per-function
// merge summaries as deterministic, versioned JSON.
func runSummary(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("f3m summary", flag.ContinueOnError)
	out := fs.String("o", "", "write the summary to FILE instead of stdout")
	source := fs.String("source", "", "record PATH as the module source (default: the input path as given)")
	k := fs.Int("k", 0, "MinHash fingerprint size (0 = default 200)")
	gen := fs.Int("gen", 0, "generate a synthetic module with ~N functions instead of reading files")
	seed := fs.Int64("seed", 1, "synthetic generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mod, err := loadModule(fs.Args(), *gen, *seed)
	if err != nil {
		return err
	}
	if mod.Name == "module" && *gen == 0 && len(fs.Args()) == 1 {
		// The parser's fallback name for files without a `module`
		// directive. Left as-is, every summarized file would share it
		// and Index.Add would reject the set (cross-module accounting
		// needs distinct names), so name the module after its file.
		base := filepath.Base(fs.Args()[0])
		mod.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	ms := summary.Extract(mod, summary.Params{K: *k}, nil, nil)
	switch {
	case *source != "":
		ms.Source = *source
	case *gen == 0 && len(fs.Args()) == 1:
		// Recorded as given (not absolutized) so a summary checked in
		// next to its module stays portable; `f3m merge -summaries`
		// resolves relative sources against the summary file's
		// directory.
		ms.Source = fs.Args()[0]
	}
	enc, err := ms.Encode()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// runMergeSummaries implements `f3m merge -summaries`: load summary
// files, plan cross-module merges over them, then link the summarized
// modules and merge optimistically under the translation validator.
func runMergeSummaries(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("f3m merge", flag.ContinueOnError)
	summaries := fs.Bool("summaries", false, "treat the inputs as .sum summary files (required; modules load from each summary's recorded source)")
	threshold := fs.Float64("threshold", -1, "similarity threshold (-1 = default)")
	workers := fs.Int("workers", 0, "preprocess/rank parallelism (0 = GOMAXPROCS, 1 = sequential)")
	mergeWorkers := fs.Int("merge-workers", 1, "plan pre-alignment workers (0/1 = sequential)")
	check := fs.String("check", "validate", "static-analysis level; anything below validate is raised to it (optimistic merging requires the validator)")
	emit := fs.Bool("emit", false, "print the merged module")
	verbose := fs.Bool("v", false, "log every planned pair")
	metrics := fs.Bool("metrics", false, "print the candidate funnel and metric registry")
	metricsJSON := fs.String("metrics-json", "", "write the deterministic metrics snapshot as JSON to FILE (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*summaries {
		return fmt.Errorf("f3m merge: only summary-driven merging is supported; pass -summaries with .sum files")
	}
	if len(fs.Args()) == 0 {
		return fmt.Errorf("f3m merge: no summary files")
	}

	ix := summary.NewIndex()
	var mods []*ir.Module
	for _, sumPath := range fs.Args() {
		data, err := os.ReadFile(sumPath)
		if err != nil {
			return err
		}
		ms, err := summary.Decode(data)
		if err != nil {
			return fmt.Errorf("%s: %w", sumPath, err)
		}
		if ms.Source == "" {
			return fmt.Errorf("%s: summary records no module source; re-run f3m summary with -source", sumPath)
		}
		src := ms.Source
		if !filepath.IsAbs(src) {
			src = filepath.Join(filepath.Dir(sumPath), src)
		}
		mod, err := loadFile(src)
		if err != nil {
			return fmt.Errorf("%s: loading module: %w", sumPath, err)
		}
		if err := ix.Add(ms); err != nil {
			return err
		}
		mods = append(mods, mod)
	}

	cfg := core.DefaultConfig(core.F3MStatic)
	cfg.Threshold = *threshold
	cfg.Workers = *workers
	cfg.MergeWorkers = *mergeWorkers
	var err error
	cfg.Check, err = core.ParseCheckMode(*check)
	if err != nil {
		return err
	}
	if *metrics || *metricsJSON != "" {
		cfg.Metrics = obs.NewMetrics()
	}

	sr, linked, err := core.RunSummaryMerge("linked", mods, ix, cfg)
	if err != nil {
		return err
	}
	if err := ir.VerifyModule(linked); err != nil {
		return fmt.Errorf("internal error: module invalid after merging: %w", err)
	}

	rep := sr.Report
	fmt.Fprintf(stdout, "strategy:      %s cross-module (t=%.3f, k=%d, b=%d)\n", rep.Strategy, rep.Threshold, rep.K, rep.Bands)
	fmt.Fprintf(stdout, "modules:       %d summarized, %d functions\n", sr.Modules, rep.NumFuncs)
	fmt.Fprintf(stdout, "planned:       %d pairs (%d cross-module)\n", sr.Planned, sr.CrossModulePlanned)
	fmt.Fprintf(stdout, "attempts:      %d ranked pairs, %d merged (%d cross-module)\n", rep.Attempts, rep.Merges, sr.CrossModuleMerges)
	fmt.Fprintf(stdout, "validated:     %d proven, %d stale, %d misspeculated, %d replays\n", sr.Validated, sr.Stale, sr.Misspeculated, sr.Replays)
	fmt.Fprintf(stdout, "size:          %d -> %d (%.2f%% reduction)\n", rep.SizeBefore, rep.SizeAfter, 100*rep.Reduction())
	tt := rep.Times
	fmt.Fprintf(stdout, "pass time:     %v (preprocess %v, align %v, codegen %v)\n",
		tt.Total(), tt.Preprocess,
		tt.AlignSuccess+tt.AlignFail, tt.CodegenSuccess+tt.CodegenFail)
	nerr := rep.Diagnostics.Count(analysis.Error)
	fmt.Fprintf(stdout, "checks:        validate, %d diagnostics (%d errors)\n", len(rep.Diagnostics), nerr)
	if len(rep.Diagnostics) > 0 {
		if err := rep.Diagnostics.Render(stdout); err != nil {
			return err
		}
	}
	if nerr > 0 {
		return fmt.Errorf("check=validate found %d errors", nerr)
	}
	if *verbose {
		for _, p := range rep.Pairs {
			status := "skipped"
			if p.Attempted {
				status = "rejected"
				if p.Profitable {
					status = fmt.Sprintf("merged, saved %d", p.Saving)
				}
			}
			fmt.Fprintf(stdout, "  %-30s + %-30s sim=%.3f %s\n", p.A, p.B, p.Similarity, status)
		}
	}
	if *metrics {
		fmt.Fprintln(stdout)
		cfg.Metrics.WriteFunnel(stdout)
		fmt.Fprintln(stdout)
		cfg.Metrics.WriteText(stdout)
	}
	if *metricsJSON != "" {
		w := io.Writer(stdout)
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := cfg.Metrics.WriteJSON(w); err != nil {
			return err
		}
	}
	if *emit {
		if err := ir.WriteModule(stdout, linked); err != nil {
			return err
		}
	}
	return nil
}
