// Command f3m applies function merging to a module and reports the
// result. Inputs are dispatched on file extension: .ir textual IR
// files (see internal/ir), .c mini-C source files, .wat WebAssembly
// text modules (see internal/wat), or a generated synthetic workload.
// Mini-C files concatenate into one translation unit; IR and wat
// files are linked LTO-style into one module.
//
// The serve subcommand instead starts the long-lived merge-as-a-service
// daemon (see SERVING.md for the HTTP API and `f3m serve -h` for its
// flags). The summary and merge subcommands drive the cross-module
// workflow: summary extracts a module's per-function merge summaries
// as a versioned .sum file, and merge -summaries links the summarized
// modules and merges them optimistically along a plan computed from
// the summaries alone, with every commit re-proved by the translation
// validator (see DESIGN.md, "Cross-module merging").
//
// Usage:
//
//	f3m [flags] [file.ir | file.c | file.wat ...]
//	f3m serve [flags]
//	f3m summary [-o FILE] [-source PATH] [-k K] [file.ir | file.c | file.wat | -gen N]
//	f3m merge -summaries [flags] a.sum b.sum ...
//
//	-strategy hyfm|f3m|f3m-adapt|f3m-cfg   ranking strategy (default f3m; f3m-cfg
//	                               fingerprints and aligns in canonical dominator-tree
//	                               block order, merging block-reordered twins, and
//	                               forces -check=validate)
//	-gen N                         generate a synthetic module with ~N functions
//	-seed S                        generation seed
//	-threshold T                   similarity threshold (-1 = strategy default)
//	-k K                           MinHash fingerprint size (0 = default)
//	-workers N                     preprocess/rank parallelism (0 = GOMAXPROCS, 1 = sequential)
//	-merge-workers N               speculative merge-stage workers (0/1 = sequential merge loop)
//	-check off|fast|strict|validate  static-analysis level (fast = audit each merge; strict = full module checks; validate = strict + per-merge translation validation)
//	-emit                          print the optimized module to stdout
//	-v                             per-pair merge log
//	-trace                         print the stage-span trace after the report
//	-metrics                       print the candidate funnel and metric registry
//	-metrics-json FILE             write the deterministic metrics snapshot as JSON ("-" = stdout)
//	-cpuprofile FILE               write a pprof CPU profile of the merging pass
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"f3m/internal/analysis"
	"f3m/internal/core"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/minic"
	"f3m/internal/obs"
	"f3m/internal/wat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "f3m:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:], stdout)
		case "summary":
			return runSummary(args[1:], stdout)
		case "merge":
			return runMergeSummaries(args[1:], stdout)
		}
	}
	fs := flag.NewFlagSet("f3m", flag.ContinueOnError)
	strategy := fs.String("strategy", "f3m", "ranking strategy: "+strings.Join(core.StrategyNames(), ", "))
	gen := fs.Int("gen", 0, "generate a synthetic module with ~N functions instead of reading files")
	seed := fs.Int64("seed", 1, "synthetic generation seed")
	threshold := fs.Float64("threshold", -1, "similarity threshold (-1 = strategy default)")
	k := fs.Int("k", 0, "MinHash fingerprint size (0 = default)")
	workers := fs.Int("workers", 0, "preprocess/rank parallelism (0 = GOMAXPROCS, 1 = sequential)")
	mergeWorkers := fs.Int("merge-workers", 1, "speculative merge-stage workers (0/1 = sequential merge loop)")
	check := fs.String("check", "off", "static-analysis level: off, fast (audit each merge), strict (full module checks) or validate (strict plus per-merge translation validation)")
	emit := fs.Bool("emit", false, "print the optimized module")
	verbose := fs.Bool("v", false, "log every selected pair")
	trace := fs.Bool("trace", false, "print the stage-span trace after the report")
	metrics := fs.Bool("metrics", false, "print the candidate funnel and metric registry")
	metricsJSON := fs.String("metrics-json", "", "write the deterministic metrics snapshot as JSON to FILE (\"-\" = stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the merging pass to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}

	strat, err := core.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	mod, err := loadModule(fs.Args(), *gen, *seed)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(strat)
	cfg.Threshold = *threshold
	cfg.K = *k
	cfg.Workers = *workers
	cfg.MergeWorkers = *mergeWorkers
	cfg.Check, err = core.ParseCheckMode(*check)
	if err != nil {
		return err
	}
	if *trace {
		cfg.Tracer = obs.NewTracer()
	}
	if *metrics || *metricsJSON != "" {
		cfg.Metrics = obs.NewMetrics()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rep, err := core.Run(mod, cfg)
	if err != nil {
		return err
	}
	if err := ir.VerifyModule(mod); err != nil {
		return fmt.Errorf("internal error: module invalid after merging: %w", err)
	}

	fmt.Fprintf(stdout, "strategy:      %s (t=%.3f, k=%d, b=%d)\n", rep.Strategy, rep.Threshold, rep.K, rep.Bands)
	fmt.Fprintf(stdout, "functions:     %d\n", rep.NumFuncs)
	fmt.Fprintf(stdout, "attempts:      %d ranked pairs, %d merged\n", rep.Attempts, rep.Merges)
	fmt.Fprintf(stdout, "size:          %d -> %d (%.2f%% reduction)\n", rep.SizeBefore, rep.SizeAfter, 100*rep.Reduction())
	tt := rep.Times
	fmt.Fprintf(stdout, "pass time:     %v (preprocess %v, ranking %v, align %v, codegen %v)\n",
		tt.Total(), tt.Preprocess, tt.RankSuccess+tt.RankFail,
		tt.AlignSuccess+tt.AlignFail, tt.CodegenSuccess+tt.CodegenFail)
	if cfg.Check != core.CheckOff {
		nerr := rep.Diagnostics.Count(analysis.Error)
		fmt.Fprintf(stdout, "checks:        %s, %d diagnostics (%d errors)\n",
			cfg.Check, len(rep.Diagnostics), nerr)
		if len(rep.Diagnostics) > 0 {
			if err := rep.Diagnostics.Render(stdout); err != nil {
				return err
			}
		}
		if nerr > 0 {
			return fmt.Errorf("check=%s found %d errors", cfg.Check, nerr)
		}
	}
	if *verbose {
		for _, p := range rep.Pairs {
			if !p.Attempted {
				continue
			}
			status := "rejected"
			if p.Profitable {
				status = fmt.Sprintf("merged, saved %d", p.Saving)
			}
			fmt.Fprintf(stdout, "  %-30s + %-30s sim=%.3f %s\n", p.A, p.B, p.Similarity, status)
		}
	}
	if *metrics {
		fmt.Fprintln(stdout)
		rep.Metrics.WriteFunnel(stdout)
		fmt.Fprintln(stdout)
		rep.Metrics.WriteText(stdout)
	}
	if *metricsJSON != "" {
		w := io.Writer(stdout)
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rep.Metrics.WriteJSON(w); err != nil {
			return err
		}
	}
	if *trace {
		fmt.Fprintln(stdout)
		cfg.Tracer.WriteText(stdout)
	}
	if *emit {
		if err := ir.WriteModule(stdout, mod); err != nil {
			return err
		}
	}
	return nil
}

// frontendExt maps an input file name to its front end. Files with no
// extension are treated as textual IR for backward compatibility with
// piped temp files.
func frontendExt(path string) (string, error) {
	switch ext := filepath.Ext(path); ext {
	case ".ir", "":
		return ".ir", nil
	case ".c":
		return ".c", nil
	case ".wat":
		return ".wat", nil
	default:
		return "", fmt.Errorf("%s: unknown input extension %q (supported: .ir textual IR, .c mini-C, .wat WebAssembly text)", path, ext)
	}
}

// loadFile runs one input file through its front end and returns a
// verified module named after the file when the source does not name
// itself (so cross-module summary accounting gets distinct names).
func loadFile(path string) (*ir.Module, error) {
	ext, err := frontendExt(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(path)
	switch ext {
	case ".c":
		return minic.Compile(base, string(data))
	case ".wat":
		return wat.Compile(strings.TrimSuffix(base, ".wat"), string(data))
	default:
		mod, err := ir.ParseModule(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := ir.VerifyModule(mod); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return mod, nil
	}
}

// loadModule assembles the input module from files or the generator.
// All files must use the same front end (mixing .c and .wat in one
// invocation has no defined link semantics).
func loadModule(files []string, gen int, seed int64) (*ir.Module, error) {
	if gen > 0 {
		spec := irgen.SuiteSpec{Name: "generated", Funcs: gen, AvgInstrs: 25, CloneFraction: 0.4}
		return irgen.Generate(spec.Config(seed)).Module, nil
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no input files (or use -gen N)")
	}
	ext, err := frontendExt(files[0])
	if err != nil {
		return nil, err
	}
	for _, f := range files[1:] {
		e, err := frontendExt(f)
		if err != nil {
			return nil, err
		}
		if e != ext {
			return nil, fmt.Errorf("%s: cannot mix %s and %s inputs in one invocation", f, ext, e)
		}
	}
	// Mini-C inputs are concatenated into one translation unit, like a
	// single-file amalgamation build.
	if ext == ".c" {
		var src strings.Builder
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			src.Write(data)
			src.WriteByte('\n')
		}
		return minic.Compile(filepath.Base(files[0]), src.String())
	}
	// IR and wat units are linked LTO-style into one module, matching
	// the paper's monolithic-bitcode setup.
	var units []*ir.Module
	for _, f := range files {
		mod, err := loadFile(f)
		if err != nil {
			return nil, err
		}
		units = append(units, mod)
	}
	if len(units) == 1 {
		return units[0], nil
	}
	return ir.LinkModules(filepath.Base(files[0])+"+", units...)
}
