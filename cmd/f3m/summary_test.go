package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestSummaryGolden pins the `f3m summary` output format on the
// checked-in cross-module corpus: the stdout encoding must be
// byte-identical to the checked-in .sum file, so any drift in the
// summary format (field order, lane encoding, indentation) fails here
// before it breaks consumers of stored summaries.
func TestSummaryGolden(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"summary", "-source", "xmod_a.ir", filepath.Join("testdata", "xmod_a.ir")}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "xmod_a.sum"))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("summary output diverged from testdata/xmod_a.sum:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestMergeSummariesGolden pins the `f3m merge -summaries` report on
// the checked-in two-module corpus. All three planned pairs span the
// module boundary, so the report doubles as a regression test for
// cross-module accounting. The pass-time line is wall-clock and
// elided.
func TestMergeSummariesGolden(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"merge", "-summaries", "-v",
		filepath.Join("testdata", "xmod_a.sum"), filepath.Join("testdata", "xmod_b.sum")}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	got := regexp.MustCompile(`(?m)^pass time:.*$`).ReplaceAllString(buf.String(), "pass time:     (elided)")
	want, err := os.ReadFile(filepath.Join("testdata", "merge_summaries.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMergeSummariesEmit checks the emitted module: cross-module pairs
// collapse into discriminator-parameterized merged functions (callers
// are rewired, the originals dropped) while unmerged functions survive.
func TestMergeSummariesEmit(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"merge", "-summaries", "-emit",
		filepath.Join("testdata", "xmod_a.sum"), filepath.Join("testdata", "xmod_b.sum")}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, fn := range []string{"@merged.mix_a.mix_b", "@merged.fold_a.fold_b", "@caller_a", "@helper"} {
		if !strings.Contains(out, fn) {
			t.Errorf("emitted module missing %s", fn)
		}
	}
}

// TestMergeSummariesErrors covers the fail-fast paths: the -summaries
// flag is mandatory, inputs are mandatory, and corrupt summary files
// are rejected with the file named.
func TestMergeSummariesErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"merge", "testdata/xmod_a.sum"}, &buf); err == nil {
		t.Error("merge without -summaries accepted")
	}
	if err := run([]string{"merge", "-summaries"}, &buf); err == nil {
		t.Error("merge with no inputs accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sum")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"merge", "-summaries", bad}, &buf); err == nil {
		t.Error("corrupt summary accepted")
	}
}

// TestSummaryDistinctModuleNames verifies `f3m summary` derives module
// names from filenames when the IR carries no module directive: two
// files summarized separately must ingest into one index (colliding
// names are rejected by Index.Add, which would make the checked-in
// corpus unusable).
func TestSummaryDistinctModuleNames(t *testing.T) {
	for _, f := range []string{"xmod_a", "xmod_b"} {
		var buf strings.Builder
		err := run([]string{"summary", filepath.Join("testdata", f+".ir")}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"module": "`+f+`"`) {
			t.Errorf("summary of %s.ir did not derive module name %q", f, f)
		}
	}
}
