package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"f3m/internal/core"
	"f3m/internal/obs"
	"f3m/internal/serve"
)

// runServe implements the `f3m serve` subcommand: a long-lived
// merge-as-a-service daemon exposing the HTTP/JSON API documented in
// SERVING.md. It blocks until a shutdown signal (SIGINT/SIGTERM) or
// the shutdown endpoint fires, then drains in-flight requests.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("f3m serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7333", "listen address")
	shards := fs.Int("shards", 0, "similarity store shards (0 = default)")
	strategy := fs.String("strategy", "f3m", "ranking strategy: "+strings.Join(core.StrategyNames(), ", "))
	threshold := fs.Float64("threshold", -1, "similarity threshold (-1 = strategy default)")
	k := fs.Int("k", 0, "MinHash fingerprint size (0 = default)")
	workers := fs.Int("workers", 0, "preprocess/rank parallelism per merge (0 = GOMAXPROCS)")
	mergeWorkers := fs.Int("merge-workers", 1, "speculative merge-stage workers (0/1 = sequential)")
	check := fs.String("check", "off", "static-analysis level: off, fast, strict or validate")
	snapshot := fs.String("snapshot", "", "default snapshot file for the snapshot/restore endpoints")
	restore := fs.Bool("restore", false, "restore state from the -snapshot file before listening")
	snapshotEvery := fs.Duration("snapshot-every", 0, "write -snapshot periodically (0 = only on demand)")
	readyFile := fs.String("ready-file", "", "write the bound address to FILE once listening (for scripts)")
	selfcheck := fs.Bool("selfcheck", false, "run the API self-check against a loopback instance and exit")
	servingDoc := fs.String("serving-doc", "", "with -selfcheck: fail unless FILE documents every route")
	trace := fs.Bool("trace", false, "record request and pipeline spans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %q", fs.Args())
	}

	if *selfcheck {
		return serve.SelfCheck(stdout, *servingDoc)
	}

	strat, err := core.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	checkMode, err := core.ParseCheckMode(*check)
	if err != nil {
		return err
	}

	cfg := serve.DefaultConfig()
	cfg.Store.Shards = *shards
	cfg.Store.K = *k
	cfg.Strategy = strat
	cfg.Threshold = *threshold
	cfg.K = *k
	cfg.Workers = *workers
	cfg.MergeWorkers = *mergeWorkers
	cfg.Check = checkMode
	cfg.SnapshotPath = *snapshot
	cfg.Metrics = obs.NewMetrics()
	if *trace {
		cfg.Tracer = obs.NewTracer()
	}
	srv := serve.NewServer(cfg)

	if *restore {
		if *snapshot == "" {
			return fmt.Errorf("serve: -restore needs -snapshot FILE")
		}
		if _, err := os.Stat(*snapshot); err == nil {
			info, err := srv.Restore("")
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "restored %d modules (%d funcs) from %s\n", info.Modules, info.Funcs, info.Path)
		} else {
			fmt.Fprintf(stdout, "no snapshot at %s yet; starting empty\n", *snapshot)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "f3m serve: listening on %s\n", ln.Addr())
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			hs.Close()
			return err
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *snapshotEvery > 0 && *snapshot != "" {
		ticker = time.NewTicker(*snapshotEvery)
		tick = ticker.C
		defer ticker.Stop()
	}

loop:
	for {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(stdout, "f3m serve: %v, shutting down\n", sig)
			break loop
		case <-srv.ShutdownRequested():
			fmt.Fprintln(stdout, "f3m serve: shutdown requested, shutting down")
			break loop
		case err := <-errCh:
			return fmt.Errorf("serve: %w", err)
		case <-tick:
			if info, err := srv.Snapshot(""); err != nil {
				fmt.Fprintf(stdout, "f3m serve: periodic snapshot failed: %v\n", err)
			} else {
				fmt.Fprintf(stdout, "f3m serve: snapshot %s (%d modules, %d bytes)\n", info.Path, info.Modules, info.Bytes)
			}
		}
	}

	// Stop accepting connections, then drain in-flight requests —
	// including a running merge — before exiting.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: http shutdown: %w", err)
	}
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if *snapshot != "" {
		if info, err := srv.Snapshot(""); err != nil {
			fmt.Fprintf(stdout, "f3m serve: final snapshot failed: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "f3m serve: final snapshot %s (%d modules)\n", info.Path, info.Modules)
		}
	}
	fmt.Fprintln(stdout, "f3m serve: drained, bye")
	return nil
}
