package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestLoadModuleGenerated(t *testing.T) {
	m, err := loadModule(nil, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) < 100 {
		t.Errorf("generated %d functions, want ≈150", len(m.Funcs))
	}
}

func TestLoadModuleIRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ir")
	src := `
define i32 @f(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{path}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("f") == nil {
		t.Error("missing @f")
	}
}

func TestLoadModuleMiniC(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.c")
	b := filepath.Join(dir, "b.c")
	if err := os.WriteFile(a, []byte("int one(int x) { return x + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("int two(int x) { return one(x) + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{a, b}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("one") == nil || m.Func("two") == nil {
		t.Error("missing functions from concatenated unit")
	}
}

func TestLoadModuleWat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "twice.wat")
	src := `(func $twice (param $x i32) (result i32) local.get $x local.get $x i32.add)`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{path}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("twice") == nil {
		t.Error("missing @twice")
	}
	if m.Name != "twice" {
		t.Errorf("module name %q, want filename-derived \"twice\"", m.Name)
	}
}

// TestFrontendDispatch pins the extension table: which front end each
// input lands on, and the rejection of unknown and mixed extensions.
func TestFrontendDispatch(t *testing.T) {
	cases := []struct {
		path, want string
		wantErr    bool
	}{
		{path: "m.ir", want: ".ir"},
		{path: "dir/x.ir", want: ".ir"},
		{path: "piped-temp", want: ".ir"}, // extensionless defaults to IR
		{path: "unit.c", want: ".c"},
		{path: "mod.wat", want: ".wat"},
		{path: "mod.wasm", wantErr: true},
		{path: "prog.rs", wantErr: true},
		{path: "archive.tar.gz", wantErr: true},
	}
	for _, tc := range cases {
		got, err := frontendExt(tc.path)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: accepted, want unknown-extension error", tc.path)
			} else if !strings.Contains(err.Error(), "supported:") {
				t.Errorf("%s: error %q does not list supported extensions", tc.path, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.path, err)
		} else if got != tc.want {
			t.Errorf("%s: dispatched to %s, want %s", tc.path, got, tc.want)
		}
	}

	dir := t.TempDir()
	c := filepath.Join(dir, "a.c")
	w := filepath.Join(dir, "b.wat")
	os.WriteFile(c, []byte("int f() { return 0; }"), 0o644)
	os.WriteFile(w, []byte("(func)"), 0o644)
	if _, err := loadModule([]string{c, w}, 0, 0); err == nil || !strings.Contains(err.Error(), "mix") {
		t.Errorf("mixed extensions: got %v, want mixing error", err)
	}
}

func TestLoadModuleErrors(t *testing.T) {
	if _, err := loadModule(nil, 0, 0); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := loadModule([]string{"nosuch.ir"}, 0, 0); err == nil {
		t.Error("expected error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ir")
	os.WriteFile(bad, []byte("define bogus"), 0o644)
	if _, err := loadModule([]string{bad}, 0, 0); err == nil {
		t.Error("expected parse error")
	}
}

// TestCheckStrictGolden pins the -check=strict report rendering on the
// checked-in corpus. The pass-time line is wall-clock and elided.
func TestCheckStrictGolden(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-check=strict", "-seed", "1", "../../testdata/handlers.c"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	got := regexp.MustCompile(`(?m)^pass time:.*$`).ReplaceAllString(buf.String(), "pass time:     (elided)")
	want, err := os.ReadFile(filepath.Join("testdata", "check_strict.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCheckValidateGolden pins the -check=validate report rendering on
// the checked-in corpus: identical to strict except the checks line,
// with every committed merge proven bisimilar to its originals.
func TestCheckValidateGolden(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-check=validate", "-seed", "1", "../../testdata/handlers.c"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	got := regexp.MustCompile(`(?m)^pass time:.*$`).ReplaceAllString(buf.String(), "pass time:     (elided)")
	want, err := os.ReadFile(filepath.Join("testdata", "check_validate.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMergeWatGolden pins the full wat path end to end: the
// two-revision scanner corpus lowers, links, merges at least one pair
// under full translation validation, and renders a byte-identical
// report at every workers / merge-workers setting.
func TestMergeWatGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "merge_wat.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(want), " 5 merged") {
		t.Fatalf("golden no longer records committed merges:\n%s", want)
	}
	corpus := []string{
		filepath.Join("testdata", "scanner_v1.wat"),
		filepath.Join("testdata", "scanner_v2.wat"),
	}
	for _, w := range []string{"1", "2", "8"} {
		var buf strings.Builder
		args := append([]string{"-check=validate", "-workers", w, "-merge-workers", w}, corpus...)
		if err := run(args, &buf); err != nil {
			t.Fatalf("workers=%s: %v\noutput:\n%s", w, err, buf.String())
		}
		got := regexp.MustCompile(`(?m)^pass time:.*$`).ReplaceAllString(buf.String(), "pass time:     (elided)")
		if got != string(want) {
			t.Errorf("workers=%s diverged from golden:\n--- got ---\n%s--- want ---\n%s", w, got, want)
		}
	}
}

// TestCheckModeErrors covers flag rejection and the nonzero-exit path
// for error-level findings.
func TestCheckModeErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-check=pedantic", "-gen", "10"}, &buf); err == nil {
		t.Error("unknown check mode accepted")
	}
}
