package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestLoadModuleGenerated(t *testing.T) {
	m, err := loadModule(nil, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) < 100 {
		t.Errorf("generated %d functions, want ≈150", len(m.Funcs))
	}
}

func TestLoadModuleIRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ir")
	src := `
define i32 @f(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{path}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("f") == nil {
		t.Error("missing @f")
	}
}

func TestLoadModuleMiniC(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.c")
	b := filepath.Join(dir, "b.c")
	if err := os.WriteFile(a, []byte("int one(int x) { return x + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("int two(int x) { return one(x) + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{a, b}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("one") == nil || m.Func("two") == nil {
		t.Error("missing functions from concatenated unit")
	}
}

func TestLoadModuleErrors(t *testing.T) {
	if _, err := loadModule(nil, 0, 0); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := loadModule([]string{"nosuch.ir"}, 0, 0); err == nil {
		t.Error("expected error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ir")
	os.WriteFile(bad, []byte("define bogus"), 0o644)
	if _, err := loadModule([]string{bad}, 0, 0); err == nil {
		t.Error("expected parse error")
	}
}

// TestCheckStrictGolden pins the -check=strict report rendering on the
// checked-in corpus. The pass-time line is wall-clock and elided.
func TestCheckStrictGolden(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-check=strict", "-seed", "1", "../../testdata/handlers.c"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	got := regexp.MustCompile(`(?m)^pass time:.*$`).ReplaceAllString(buf.String(), "pass time:     (elided)")
	want, err := os.ReadFile(filepath.Join("testdata", "check_strict.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCheckValidateGolden pins the -check=validate report rendering on
// the checked-in corpus: identical to strict except the checks line,
// with every committed merge proven bisimilar to its originals.
func TestCheckValidateGolden(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-check=validate", "-seed", "1", "../../testdata/handlers.c"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	got := regexp.MustCompile(`(?m)^pass time:.*$`).ReplaceAllString(buf.String(), "pass time:     (elided)")
	want, err := os.ReadFile(filepath.Join("testdata", "check_validate.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCheckModeErrors covers flag rejection and the nonzero-exit path
// for error-level findings.
func TestCheckModeErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-check=pedantic", "-gen", "10"}, &buf); err == nil {
		t.Error("unknown check mode accepted")
	}
}
