package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadModuleGenerated(t *testing.T) {
	m, err := loadModule(nil, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) < 100 {
		t.Errorf("generated %d functions, want ≈150", len(m.Funcs))
	}
}

func TestLoadModuleIRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ir")
	src := `
define i32 @f(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{path}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("f") == nil {
		t.Error("missing @f")
	}
}

func TestLoadModuleMiniC(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.c")
	b := filepath.Join(dir, "b.c")
	if err := os.WriteFile(a, []byte("int one(int x) { return x + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("int two(int x) { return one(x) + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule([]string{a, b}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("one") == nil || m.Func("two") == nil {
		t.Error("missing functions from concatenated unit")
	}
}

func TestLoadModuleErrors(t *testing.T) {
	if _, err := loadModule(nil, 0, 0); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := loadModule([]string{"nosuch.ir"}, 0, 0); err == nil {
		t.Error("expected error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ir")
	os.WriteFile(bad, []byte("define bogus"), 0o644)
	if _, err := loadModule([]string{bad}, 0, 0); err == nil {
		t.Error("expected parse error")
	}
}
