// Command f3m-experiments regenerates the tables and figures of the
// F3M paper's evaluation on synthetic workloads.
//
// Usage:
//
//	f3m-experiments [-exp table1|fig3|...|all] [-quick] [-seed S] [-cpuprofile FILE]
//
// Each experiment prints an aligned text table (heatmaps render as
// ASCII density plots). EXPERIMENTS.md records how the outputs compare
// to the paper's numbers. -cpuprofile captures a pprof CPU profile of
// the selected experiments, the quickest way to see where a sweep
// spends its time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"f3m/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig3, fig4, ... or all)")
	quick := flag.Bool("quick", false, "scaled-down workloads (seconds per experiment)")
	seed := flag.Int64("seed", 20220402, "workload generation seed")
	repeats := flag.Int("repeats", 0, "timed-run repeats (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to FILE")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3m-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "f3m-experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	o := experiments.DefaultOptions()
	o.Seed = *seed
	o.Quick = *quick
	if *repeats > 0 {
		o.Repeats = *repeats
	}

	if *exp != "all" {
		run, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "f3m-experiments: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		fmt.Print(run(o).Render())
		return
	}
	for _, e := range experiments.Registry {
		start := time.Now()
		fmt.Print(e.Run(o).Render())
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
