#!/bin/sh
# check.sh — the repository's verification gate.
#
# Runs static analysis and the full test suite under the race detector.
# The -race run is what guards the parallel preprocessing/ranking
# pipeline (core.Config.Workers): the determinism and worker-pool tests
# drive every stage with multiple goroutines, so a reintroduced data
# race in the fingerprint config, the LSH batch build, or the ranking
# fan-out fails here even on a single-CPU machine.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== lintdoc (exported-comment lint)"
go run ./scripts/lintdoc ./internal/* ./cmd/* ./scripts/lintdoc

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "ok"
