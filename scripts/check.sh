#!/bin/sh
# check.sh — the repository's verification gate.
#
# Runs static analysis and the full test suite under the race detector.
# The -race run is what guards the parallel preprocessing/ranking
# pipeline (core.Config.Workers): the determinism and worker-pool tests
# drive every stage with multiple goroutines, so a reintroduced data
# race in the fingerprint config, the LSH batch build, or the ranking
# fan-out fails here even on a single-CPU machine.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== lintdoc (exported-comment lint)"
go run ./scripts/lintdoc ./internal/* ./cmd/* ./scripts/lintdoc ./scripts/lintmap

echo "== lintmap (unsorted map iteration lint)"
# The determinism lint: the deterministic packages (report-producing
# pipeline, analysis, serving, alignment) may not range over maps
# without either sorting or a reviewed `lintmap:ignore` annotation.
go run ./scripts/lintmap ./internal/core ./internal/analysis ./internal/serve ./internal/align

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== f3m -check=strict over the corpus"
# The analyzer gate: the strict verifier, merge auditor and IR linter
# must stay silent on every checked-in input (nonzero exit on any
# error-level diagnostic).
go run ./cmd/f3m -check=strict testdata/handlers.c >/dev/null
go run ./cmd/f3m -check=strict -strategy hyfm testdata/handlers.c >/dev/null
go run ./cmd/f3m -check=strict -gen 200 -seed 5 >/dev/null

echo "== f3m -check=validate over the corpus"
# The translation-validation gate: every merge the pipeline commits on
# the corpus must be proven behaviourally equivalent to the originals
# it replaced (nonzero exit on any tv diagnostic).
go run ./cmd/f3m -check=validate testdata/handlers.c >/dev/null
go run ./cmd/f3m -check=validate -strategy hyfm testdata/handlers.c >/dev/null
go run ./cmd/f3m -check=validate -gen 200 -seed 5 >/dev/null

echo "== f3m summary/merge cross-module gate"
# The cross-module gate: summarize the two checked-in corpus modules,
# merge them optimistically from the summaries under the translation
# validator, and require (a) byte-identical reports at sequential vs
# fully parallel settings and (b) zero misspeculated commits on clean
# inputs. Summaries are regenerated into a temp dir so the gate also
# proves `f3m summary` output still drives the merge (the golden test
# separately pins the checked-in .sum files).
XMOD="$(mktemp -d)"
trap 'rm -rf "$XMOD"' EXIT
go run ./cmd/f3m summary -source xmod_a.ir -o "$XMOD/xmod_a.sum" cmd/f3m/testdata/xmod_a.ir
go run ./cmd/f3m summary -source xmod_b.ir -o "$XMOD/xmod_b.sum" cmd/f3m/testdata/xmod_b.ir
cp cmd/f3m/testdata/xmod_a.ir cmd/f3m/testdata/xmod_b.ir "$XMOD/"
go run ./cmd/f3m merge -summaries -check=validate -workers 1 -merge-workers 1 -v \
    "$XMOD/xmod_a.sum" "$XMOD/xmod_b.sum" | sed 's/^pass time:.*$//' >"$XMOD/seq.txt"
go run ./cmd/f3m merge -summaries -check=validate -workers 8 -merge-workers 8 -v \
    "$XMOD/xmod_a.sum" "$XMOD/xmod_b.sum" | sed 's/^pass time:.*$//' >"$XMOD/par.txt"
cmp "$XMOD/seq.txt" "$XMOD/par.txt"
grep -q "0 misspeculated" "$XMOD/seq.txt"
grep -q "cross-module)" "$XMOD/seq.txt"

echo "== f3m wat front-end gate"
# The wat gate: the checked-in two-revision scanner corpus must lower,
# link and merge cleanly under both strict checks and full translation
# validation, with byte-identical reports at sequential vs fully
# parallel settings, zero diagnostics, and at least one committed
# merge (the report line is "attempts: N ranked pairs, M merged").
WAT="$(mktemp -d)"
trap 'rm -rf "$XMOD" "$WAT"' EXIT
go run ./cmd/f3m -check=strict \
    cmd/f3m/testdata/scanner_v1.wat cmd/f3m/testdata/scanner_v2.wat >/dev/null
go run ./cmd/f3m -check=validate -workers 1 -merge-workers 1 -v \
    cmd/f3m/testdata/scanner_v1.wat cmd/f3m/testdata/scanner_v2.wat \
    | sed 's/^pass time:.*$//' >"$WAT/seq.txt"
go run ./cmd/f3m -check=validate -workers 8 -merge-workers 8 -v \
    cmd/f3m/testdata/scanner_v1.wat cmd/f3m/testdata/scanner_v2.wat \
    | sed 's/^pass time:.*$//' >"$WAT/par.txt"
cmp "$WAT/seq.txt" "$WAT/par.txt"
grep -q "0 diagnostics (0 errors)" "$WAT/seq.txt"
grep -q "ranked pairs, [1-9]" "$WAT/seq.txt"

echo "== f3m -strategy=f3m-cfg corpus gate"
# The CFG-alignment gate: both checked-in front-end corpora must merge
# under the reorder-tolerant strategy with every commit re-proved by
# the translation validator, and the report must stay byte-identical
# between the sequential and fully parallel settings.
CFG="$(mktemp -d)"
trap 'rm -rf "$XMOD" "$WAT" "$CFG"' EXIT
go run ./cmd/f3m -strategy=f3m-cfg -check=validate -workers 1 -merge-workers 1 -v \
    cmd/f3m/testdata/scanner_v1.wat cmd/f3m/testdata/scanner_v2.wat \
    | sed 's/^pass time:.*$//' >"$CFG/wat_seq.txt"
go run ./cmd/f3m -strategy=f3m-cfg -check=validate -workers 8 -merge-workers 8 -v \
    cmd/f3m/testdata/scanner_v1.wat cmd/f3m/testdata/scanner_v2.wat \
    | sed 's/^pass time:.*$//' >"$CFG/wat_par.txt"
cmp "$CFG/wat_seq.txt" "$CFG/wat_par.txt"
grep -q "0 diagnostics (0 errors)" "$CFG/wat_seq.txt"
grep -q "ranked pairs, [1-9]" "$CFG/wat_seq.txt"
go run ./cmd/f3m -strategy=f3m-cfg -check=validate -workers 1 -merge-workers 1 -v \
    testdata/handlers.c | sed 's/^pass time:.*$//' >"$CFG/minic_seq.txt"
go run ./cmd/f3m -strategy=f3m-cfg -check=validate -workers 8 -merge-workers 8 -v \
    testdata/handlers.c | sed 's/^pass time:.*$//' >"$CFG/minic_par.txt"
cmp "$CFG/minic_seq.txt" "$CFG/minic_par.txt"
grep -q "0 diagnostics (0 errors)" "$CFG/minic_seq.txt"
grep -q "ranked pairs, [1-9]" "$CFG/minic_seq.txt"

echo "== f3m serve self-check (API smoke + SERVING.md drift)"
# The serving gate: boot a loopback daemon, drive every HTTP route
# (submit, query, merge, snapshot -> mutate -> restore -> re-merge with
# a byte-identical report key, graceful shutdown), and fail if any
# registered route is missing from SERVING.md.
go run ./cmd/f3m serve -selfcheck -serving-doc SERVING.md >/dev/null

if [ "${BENCH_GATE:-}" = "1" ]; then
    echo "== merge-stage allocs/op gate (BENCH_GATE=1)"
    # Opt-in: runs the merge-stage benchmark and fails on any allocs/op
    # regression against the checked-in BENCH_budget.json ceilings. Off
    # by default because a benchmark run costs minutes; ns/op is NOT
    # gated (too noisy on shared hosts), only allocation counts.
    scripts/bench.sh "$(mktemp)"
fi

echo "== fuzz smoke (FUZZTIME=${FUZZTIME:-5s} per target)"
# Short randomized runs of the native fuzz targets; the full
# checked-in corpora under testdata/fuzz (including past crash inputs)
# already ran as regression seeds during `go test` above. Crank
# FUZZTIME up for a real fuzzing session.
go test -run '^$' -fuzz '^FuzzIRParseRoundTrip$' -fuzztime "${FUZZTIME:-5s}" ./internal/ir
go test -run '^$' -fuzz '^FuzzMinicParser$' -fuzztime "${FUZZTIME:-5s}" ./internal/minic
go test -run '^$' -fuzz '^FuzzFingerprintEncode$' -fuzztime "${FUZZTIME:-5s}" ./internal/fingerprint
go test -run '^$' -fuzz '^FuzzWatParseRoundTrip$' -fuzztime "${FUZZTIME:-5s}" ./internal/wat

echo "ok"
