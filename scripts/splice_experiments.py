#!/usr/bin/env python3
"""Replace one experiment's section in full_experiments.txt with a
freshly generated one (used to redo timing-sensitive figures that ran
under CPU contention)."""
import sys


def main():
    if len(sys.argv) != 4:
        print("usage: splice_experiments.py <full.txt> <section.txt> <exp-id>")
        sys.exit(1)
    full_path, section_path, exp = sys.argv[1], sys.argv[2], sys.argv[3]
    full = open(full_path).read()
    section = open(section_path).read().rstrip() + "\n"

    start_marker = f"== {exp}:"
    start = full.find(start_marker)
    if start < 0:
        print(f"section {exp} not found")
        sys.exit(1)
    end_marker = f"({exp} took "
    end = full.find(end_marker, start)
    if end < 0:
        print(f"end of section {exp} not found")
        sys.exit(1)
    end = full.find("\n", end) + 1

    # Preserve the original "took" line's format by appending our own.
    open(full_path, "w").write(full[:start] + section + full[end:])
    print(f"spliced {exp}")


if __name__ == "__main__":
    main()
