// Command lintdoc is the repository's exported-comment lint, in the
// spirit of revive's exported rule but dependency-free: every exported
// top-level declaration in the packages passed on the command line must
// carry a doc comment, and every package must have a package comment.
// Exercised by scripts/check.sh; exits non-zero listing each violation
// as file:line.
//
// Usage:
//
//	go run ./scripts/lintdoc ./internal/core ./internal/obs ...
//
// Arguments are directories (one package per directory, non-recursive).
// Test files are skipped: their exported helpers are internal to the
// test binary.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %s: %v\n", dir, err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported declaration(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and reports each undocumented
// exported declaration, returning the violation count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	complain := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, what)
		bad++
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// Report against any one file of the package.
			for name, f := range pkg.Files {
				_ = name
				complain(f.Package, fmt.Sprintf("package %s has no package comment", pkg.Name))
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lintDecl(decl, complain)
			}
		}
	}
	return bad, nil
}

// exportedRecv reports whether d is a plain function or a method whose
// receiver base type is itself exported. Exported methods on
// unexported types are not reachable API surface, so — like revive's
// exported rule — they are exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// lintDecl reports undocumented exported top-level declarations. For
// grouped var/const/type blocks a doc comment on the group satisfies
// every member, matching the convention gofmt produces.
func lintDecl(decl ast.Decl, complain func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			complain(d.Pos(), fmt.Sprintf("exported %s %s has no doc comment", kind, d.Name.Name))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					complain(s.Pos(), fmt.Sprintf("exported type %s has no doc comment", s.Name.Name))
				}
			case *ast.ValueSpec:
				if d.Doc != nil || s.Doc != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						complain(name.Pos(), fmt.Sprintf("exported %s %s has no doc comment", d.Tok, name.Name))
					}
				}
			}
		}
	}
}
