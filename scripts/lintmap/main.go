// Command lintmap is the repository's determinism lint for map
// iteration, in the spirit of `go vet` but dependency-free. The
// pipeline's contract is byte-identical reports at every worker count,
// and Go randomizes map iteration order, so every `for range` over a
// map in the deterministic packages is a potential nondeterminism bug.
// The lint flags each one; sites that are genuinely order-independent
// (or sort before emitting) carry a `// lintmap:ignore <why>` comment
// on the range line or the line above, which records the review and
// silences the finding.
//
// Usage:
//
//	go run ./scripts/lintmap ./internal/core ./internal/align ...
//
// Arguments are directories (one package per directory,
// non-recursive). Test files are skipped: tests may iterate maps
// freely because t.Errorf output order does not feed any report.
//
// Each package is type-checked with stub (empty) imports, which is
// enough to type locally declared maps — including maps whose key or
// element types come from other packages (`map[*ir.Block]int` is still
// a map type when `ir.Block` cannot be resolved). Expressions whose
// type depends entirely on an imported symbol (for example, ranging
// over a value returned by an imported function) cannot be classified
// and are skipped; the lint is a reviewed floor, not a proof.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintmap <package-dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintmap: %s: %v\n", dir, err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintmap: %d unreviewed map iteration(s); sort the keys or annotate with `lintmap:ignore <why>`\n", bad)
		os.Exit(1)
	}
}

// stubImporter satisfies every import with an empty package, so
// type-checking proceeds far enough to classify locally declared
// types. References into the stubs produce type errors, which the
// checker is configured to swallow.
type stubImporter struct {
	cache map[string]*types.Package
}

// Import returns a cached empty package for the path.
func (s stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.cache[path] = p
	return p, nil
}

// lintDir type-checks one package directory and reports each
// unannotated range over a map-typed expression, returning the count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	for _, name := range sortedKeys(pkgs) {
		pkg := pkgs[name]
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		var files []*ast.File
		for _, fname := range sortedKeys(pkg.Files) {
			files = append(files, pkg.Files[fname])
		}
		conf := types.Config{
			Importer: stubImporter{cache: map[string]*types.Package{}},
			Error:    func(error) {}, // stub imports guarantee errors; type info still fills in
		}
		info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
		// The returned error is expected (stub imports); partial type
		// info is still recorded for everything locally resolvable.
		tpkg, _ := conf.Check(pkg.Name, fset, files, info)
		qual := types.RelativeTo(tpkg)

		for _, f := range files {
			ignored := ignoreLines(fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := fset.Position(rs.Pos())
				if ignored[pos.Line] || ignored[pos.Line-1] {
					return true
				}
				fmt.Printf("%s:%d: range over map %s (iteration order is random; sort keys or annotate `lintmap:ignore <why>`)\n",
					filepath.ToSlash(pos.Filename), pos.Line, types.TypeString(tv.Type, qual))
				bad++
				return true
			})
		}
	}
	return bad, nil
}

// ignoreLines collects the line numbers carrying a lintmap:ignore
// marker; a marker suppresses findings on its own line and the next.
func ignoreLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "lintmap:ignore") {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// sortedKeys returns the map's keys in sorted order — this lint had
// better not iterate maps nondeterministically itself.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // lintmap:ignore keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
