#!/bin/sh
# bench.sh — merge-stage perf regression snapshot.
#
# Runs BenchmarkMergeStage (the merge/commit loop with the speculative
# worker pool and pooled-DP alignment cache) and writes the numbers to
# BENCH_merge.json so the perf trajectory — ns/op, allocs/op and the
# committer's cache hit rate per -merge-workers setting — is tracked
# across PRs. It also runs BenchmarkSummaryExtract (the per-module half
# of the cross-module workflow) and writes summaries/sec plus bytes/func
# to BENCH_summary.json, and BenchmarkAlignStrategies (sequence vs
# CFG-aware pipeline on block-permuted twin populations) and writes
# ns/op, mean alignment score, mean block moves and committed merges
# per strategy to BENCH_align.json. BENCHTIME and the output paths are
# overridable:
#
#   BENCHTIME=5x scripts/bench.sh          # more iterations
#   scripts/bench.sh out/bench.json        # alternate merge output file
#   SUMOUT=out/sum.json scripts/bench.sh   # alternate summary output file
#   ALIGNOUT=out/align.json scripts/bench.sh  # alternate align output file
#
# When BENCH_budget.json exists (override the path with ALLOC_BUDGET,
# or set ALLOC_BUDGET=skip to bypass), the run also gates allocs/op
# against the checked-in per-config ceilings and exits nonzero on a
# regression. Allocation counts are schedule-stable — unlike ns/op on
# a noisy box — which is what makes a hard gate feasible. The budget
# only pins workers=1: with merge workers enabled the speculative
# pool's allocation count depends on how many claims race ahead of the
# committer, which varies with host CPU count.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${1:-BENCH_merge.json}"
ALLOC_BUDGET="${ALLOC_BUDGET:-BENCH_budget.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench BenchmarkMergeStage (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkMergeStage$' -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk '
/^BenchmarkMergeStage\// {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^BenchmarkMergeStage\//, "", name)
    ns = ""; bytes = ""; allocs = ""; hit = ""; merges = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bytes = v
        else if (u == "allocs/op") allocs = v
        else if (u == "cache-hit-rate") hit = v
        else if (u == "merges") merges = v
    }
    if (n++) printf ",\n"
    printf "  {\"bench\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"cache_hit_rate\": %s, \"merges\": %s}", \
        name, ns, bytes, allocs, (hit == "" ? "null" : hit), (merges == "" ? "null" : merges)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$RAW" >"$OUT"

echo "== wrote $OUT"
cat "$OUT"

SUMOUT="${SUMOUT:-BENCH_summary.json}"
echo "== go test -bench BenchmarkSummaryExtract (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkSummaryExtract$' -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk '
/^BenchmarkSummaryExtract/ {
    ns = ""; bytes = ""; allocs = ""; sps = ""; bpf = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bytes = v
        else if (u == "allocs/op") allocs = v
        else if (u == "summaries/s") sps = v
        else if (u == "bytes/func") bpf = v
    }
    printf "[\n  {\"bench\": \"SummaryExtract\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"summaries_per_sec\": %s, \"bytes_per_func\": %s}\n]\n", \
        ns, bytes, allocs, (sps == "" ? "null" : sps), (bpf == "" ? "null" : bpf)
}
' "$RAW" >"$SUMOUT"

echo "== wrote $SUMOUT"
cat "$SUMOUT"

ALIGNOUT="${ALIGNOUT:-BENCH_align.json}"
echo "== go test -bench BenchmarkAlignStrategies (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkAlignStrategies$' -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk '
/^BenchmarkAlignStrategies\// {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^BenchmarkAlignStrategies\//, "", name)
    ns = ""; bytes = ""; allocs = ""; score = ""; moves = ""; merges = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bytes = v
        else if (u == "allocs/op") allocs = v
        else if (u == "align-score") score = v
        else if (u == "block-moves") moves = v
        else if (u == "merges") merges = v
    }
    if (n++) printf ",\n"
    printf "  {\"bench\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"align_score\": %s, \"block_moves\": %s, \"merges\": %s}", \
        name, ns, bytes, allocs, (score == "" ? "null" : score), (moves == "" ? "null" : moves), (merges == "" ? "null" : merges)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$RAW" >"$ALIGNOUT"

echo "== wrote $ALIGNOUT"
cat "$ALIGNOUT"

if [ "$ALLOC_BUDGET" != "skip" ] && [ -f "$ALLOC_BUDGET" ]; then
    echo "== allocs/op gate ($ALLOC_BUDGET)"
    # Join the fresh numbers against the budget by bench name; both
    # files are the one-object-per-line JSON this script emits, so a
    # line-oriented awk join is enough — no JSON tooling in the image.
    awk '
    function field(line, name,    re, s) {
        re = "\"" name "\": *[0-9.]+"
        if (match(line, re) == 0) return ""
        s = substr(line, RSTART, RLENGTH)
        sub(/^[^0-9]*/, "", s)
        return s
    }
    function bench(line,    s) {
        if (match(line, /"bench": *"[^"]*"/) == 0) return ""
        s = substr(line, RSTART, RLENGTH)
        sub(/^"bench": *"/, "", s)
        sub(/"$/, "", s)
        return s
    }
    FNR == NR { if (bench($0) != "") cap[bench($0)] = field($0, "max_allocs_per_op"); next }
    {
        b = bench($0)
        if (b == "" || !(b in cap)) next
        got = field($0, "allocs_per_op")
        if (got + 0 > cap[b] + 0) {
            printf "FAIL %s: allocs/op %s exceeds budget %s\n", b, got, cap[b]
            bad = 1
        } else {
            printf "ok   %s: allocs/op %s within budget %s\n", b, got, cap[b]
        }
    }
    END { exit bad }
    ' "$ALLOC_BUDGET" "$OUT"
fi
