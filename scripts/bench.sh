#!/bin/sh
# bench.sh — merge-stage perf regression snapshot.
#
# Runs BenchmarkMergeStage (the merge/commit loop with the speculative
# worker pool and pooled-DP alignment cache) and writes the numbers to
# BENCH_merge.json so the perf trajectory — ns/op, allocs/op and the
# committer's cache hit rate per -merge-workers setting — is tracked
# across PRs. BENCHTIME and the output path are overridable:
#
#   BENCHTIME=5x scripts/bench.sh          # more iterations
#   scripts/bench.sh out/bench.json        # alternate output file
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${1:-BENCH_merge.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench BenchmarkMergeStage (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkMergeStage$' -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk '
/^BenchmarkMergeStage\// {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^BenchmarkMergeStage\//, "", name)
    ns = ""; bytes = ""; allocs = ""; hit = ""; merges = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bytes = v
        else if (u == "allocs/op") allocs = v
        else if (u == "cache-hit-rate") hit = v
        else if (u == "merges") merges = v
    }
    if (n++) printf ",\n"
    printf "  {\"bench\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"cache_hit_rate\": %s, \"merges\": %s}", \
        name, ns, bytes, allocs, (hit == "" ? "null" : hit), (merges == "" ? "null" : merges)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$RAW" >"$OUT"

echo "== wrote $OUT"
cat "$OUT"
